type error = Recurrence_too_tight of string | Resource_infeasible of string

let pp_error ppf = function
  | Recurrence_too_tight m -> Fmt.pf ppf "recurrence too tight: %s" m
  | Resource_infeasible m -> Fmt.pf ppf "resource infeasible: %s" m

let op_delay ~delays g v =
  let op = Ir.Cdfg.op g v in
  let width =
    (* Arithmetic delay follows the operand width (a 1-bit compare of wide
       operands still walks the whole carry chain). *)
    match op with
    | Ir.Op.Cmp _ -> Ir.Cdfg.width g (Ir.Cdfg.preds g v).(0).Ir.Cdfg.src
    | _ -> Ir.Cdfg.width g v
  in
  Fpga.Delays.additive delays ~cls:(Ir.Op.classify op) ~width

let op_latency ~device ~delays g v =
  let d = op_delay ~delays g v in
  int_of_float (floor (d /. Fpga.Device.usable_period device))

let res_mii ~resources g =
  let counts = Hashtbl.create 8 in
  Ir.Cdfg.iter
    (fun nd ->
      match nd.op with
      | Ir.Op.Black_box { resource; _ } ->
          Hashtbl.replace counts resource
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts resource))
      | _ -> ())
    g;
  Hashtbl.fold
    (fun r used acc ->
      match Fpga.Resource.limit resources r with
      | None -> acc
      | Some 0 -> max_int (* no units at all: no feasible II *)
      | Some lim -> max acc ((used + lim - 1) / lim))
    counts 1

(* A candidate II is recurrence-feasible iff no dependence cycle carries
   more combinational work than its registers grant it: with edge weights
   d_u / T (fractional cycles of chained delay) minus II·dist for
   registered edges, a positive cycle means the recurrence cannot close.
   This is the continuous relaxation of the scheduling constraints — a
   valid lower bound; the scheduler's fixed point does the exact check. *)
let recurrence_feasible ~device ~delays ~ii g =
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period device in
  let dist_arr = Array.make n 0.0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n + 1 do
    changed := false;
    incr rounds;
    Ir.Cdfg.iter
      (fun nd ->
        Array.iter
          (fun (e : Ir.Cdfg.edge) ->
            let w =
              (op_delay ~delays g e.src /. period)
              -. float_of_int (ii * e.dist)
            in
            if dist_arr.(e.src) +. w > dist_arr.(nd.id) +. 1e-9 then begin
              dist_arr.(nd.id) <- dist_arr.(e.src) +. w;
              changed := true
            end)
          nd.preds)
      g
  done;
  not !changed

let rec_mii ~device ~delays g =
  let rec go ii =
    if ii > 64 then 64
    else if recurrence_feasible ~device ~delays ~ii g then ii
    else go (ii + 1)
  in
  go 1

let min_ii ~delays ~device ~resources g =
  max (res_mii ~resources g) (rec_mii ~device ~delays g)

let schedule ~device ~delays ~resources ~ii g =
  if ii < 1 then invalid_arg "Heuristic.schedule: ii < 1";
  let n = Ir.Cdfg.num_nodes g in
  let period = Fpga.Device.usable_period device in
  let cycle = Array.make n 0 in
  let start = Array.make n 0.0 in
  let order = Ir.Cdfg.topo_order g in
  let max_cycle = 4 * (n + 16) in
  let delay = op_delay ~delays g in
  let lat = op_latency ~device ~delays g in
  let round () =
    let slot_use : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
    let slot_count key =
      Option.value ~default:0 (Hashtbl.find_opt slot_use key)
    in
    let changed = ref false in
    List.iter
      (fun v ->
        let preds = Ir.Cdfg.preds g v in
        let cyc_lb = ref 0 in
        Array.iter
          (fun (e : Ir.Cdfg.edge) ->
            let avail = cycle.(e.src) + lat e.src in
            let lb =
              if e.dist = 0 then avail else avail + 1 - (ii * e.dist)
            in
            if lb > !cyc_lb then cyc_lb := lb)
          preds;
        let arrivals_at c =
          Array.fold_left
            (fun acc (e : Ir.Cdfg.edge) ->
              if e.dist = 0 && cycle.(e.src) + lat e.src = c then
                let residual =
                  delay e.src -. (float_of_int (lat e.src) *. period)
                in
                Float.max acc (start.(e.src) +. Float.max 0.0 residual)
              else acc)
            0.0 preds
        in
        let rec place c =
          if c > max_cycle then (c, 0.0)
          else
            let l = arrivals_at c in
            let fits =
              (* multi-cycle operations start at the cycle boundary *)
              if lat v >= 1 then l <= 1e-9
              else l +. delay v <= period +. 1e-9
            in
            if not fits then place (c + 1)
            else begin
              (* modulo resource reservation for black boxes *)
              match Ir.Cdfg.op g v with
              | Ir.Op.Black_box { resource; _ } -> (
                  match Fpga.Resource.limit resources resource with
                  | Some lim when slot_count (resource, c mod ii) >= lim ->
                      place (c + 1)
                  | Some _ | None -> (c, l))
              | _ -> (c, l)
            end
        in
        let c, l = place !cyc_lb in
        (match Ir.Cdfg.op g v with
        | Ir.Op.Black_box { resource; _ } ->
            let key = (resource, c mod ii) in
            Hashtbl.replace slot_use key (slot_count key + 1)
        | _ -> ());
        if c <> cycle.(v) || Float.abs (l -. start.(v)) > 1e-9 then begin
          changed := true;
          cycle.(v) <- c;
          start.(v) <- l
        end)
      order;
    !changed
  in
  let rec iterate k = if k > 0 && round () then iterate (k - 1) in
  iterate 100;
  (* Validate loop-carried constraints and cycle bounds. *)
  let too_tight = ref None in
  Ir.Cdfg.iter
    (fun nd ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if e.dist > 0 then begin
            let avail = cycle.(e.src) + lat e.src in
            if avail + 1 > cycle.(nd.id) + (ii * e.dist) && !too_tight = None
            then
              too_tight :=
                Some
                  (Printf.sprintf "edge %s->%s (dist %d) at II=%d"
                     (Ir.Cdfg.node_name g e.src)
                     (Ir.Cdfg.node_name g nd.id)
                     e.dist ii)
          end)
        nd.preds)
    g;
  let overflow = Array.exists (fun c -> c >= max_cycle) cycle in
  match (!too_tight, overflow) with
  | Some m, _ -> Error (Recurrence_too_tight m)
  | None, true -> Error (Resource_infeasible "schedule did not converge")
  | None, false -> Ok (Schedule.make ~ii ~cycle ~start)
