(** SDC-based modulo scheduling — the {e system of difference constraints}
    formulation used by the state-of-the-art HLS schedulers the paper
    builds on (Zhang & Liu, ICCAD'13 [22]; Canis et al., FPL'14 [3]).

    Cycle variables are continuous; every constraint has the difference
    form [S_v - S_u >= c], whose constraint matrix is totally unimodular —
    so the LP relaxation solves to an integral schedule without branching.
    Register pressure is minimized through per-value lifetime variables
    (also difference-form), which is SDC's analogue of the paper's Eq. 13
    objective under the additive delay model.

    Chaining awareness: for every pair of nodes connected by a
    combinational path whose accumulated characterized delay exceeds the
    clock period, a difference constraint forces them apart by the
    appropriate number of cycles.

    Modulo resource constraints are not expressible as differences; they
    are enforced by iterative conflict resolution — solve, detect a phase
    conflict, add an ordering constraint, re-solve (the FPL'14 recipe). *)

val schedule :
  device:Fpga.Device.t ->
  delays:Fpga.Delays.t ->
  resources:Fpga.Resource.budget ->
  ii:int ->
  Ir.Cdfg.t ->
  (Schedule.t, Heuristic.error) result
(** The returned schedule satisfies all dependence, cycle-time and modulo
    resource constraints under the additive delay model (same contract as
    {!Heuristic.schedule}, validated by {!Verify} in tests). *)

val lp_stats : unit -> int * int
(** (LP solves, simplex pivots) since the program started — diagnostics
    for the bench harness. *)
