(** FPGA device model: K-input LUTs, delay characterization, and resource
    classes for black-box operations.

    This module stands in for the combination of a real device database and
    the delay back-annotation the paper extracts from the commercial HLS
    tool's schedule reports. All delays are in nanoseconds. *)

type t = {
  k : int;  (** LUT input count (paper uses K <= 6; figures use K = 4) *)
  lut_delay : float;
      (** Delay of one LUT level including local routing, ns *)
  t_clk : float;  (** Target clock period [T_cp], ns *)
  clock_uncertainty : float;
      (** Margin subtracted from [t_clk] when checking chains, ns *)
}

val make :
  ?k:int -> ?lut_delay:float -> ?clock_uncertainty:float -> t_clk:float ->
  unit -> t
(** [make ~t_clk ()] builds a device. Defaults: [k = 4],
    [lut_delay = 0.9] ns, [clock_uncertainty = 0.0] ns.
    @raise Invalid_argument if [k < 2], or any delay is negative, or
    [t_clk <= lut_delay] (no operation could ever be scheduled). *)

val default : t
(** The device used by the Table 1 experiments: [k = 4],
    [lut_delay = 0.9] ns, [t_clk = 10.0] ns — the paper's 10 ns target. *)

val figure1 : t
(** The device of the paper's Figures 1–2: [k = 4], [lut_delay = 2.0] ns,
    [t_clk = 5.0] ns. *)

val usable_period : t -> float
(** [t_clk - clock_uncertainty]: budget available to combinational chains. *)

val levels_per_cycle : t -> int
(** Maximum number of LUT levels that fit in one clock cycle. At least 1. *)

val pp : t Fmt.t
