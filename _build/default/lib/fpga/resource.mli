(** Resource classes and availability for black-box operations (Eq. 14).

    Only black-box operations are resource-constrained in the paper's
    formulation; LUT fabric is modelled through the objective instead. *)

type budget
(** Available units per resource class. *)

val unlimited : budget
val of_list : (string * int) list -> budget
(** @raise Invalid_argument on negative counts or duplicate classes. *)

val limit : budget -> string -> int option
(** [None] when the class is unconstrained. *)

val classes : budget -> string list
(** Classes with an explicit (finite) limit, sorted. *)

val pp : budget Fmt.t
