type t = {
  logic : float;
  arith_base : float;
  arith_per_bit : float;
  black_box : (string * float) list;
}

let make ?(logic = 1.37) ?(arith_base = 1.0) ?(arith_per_bit = 0.07)
    ?(black_box = []) () =
  let neg f = f < 0.0 in
  if
    neg logic || neg arith_base || neg arith_per_bit
    || List.exists (fun (_, d) -> neg d) black_box
  then invalid_arg "Delays.make: negative delay";
  { logic; arith_base; arith_per_bit; black_box }

(* "bram_port" models a synchronous block-RAM read; "dsp" a DSP48 multiply;
   "io" a streamed input/output port. *)
let default =
  make ~black_box:[ ("bram_port", 2.8); ("dsp", 4.2); ("io", 0.6) ] ()

let with_logic t ~logic =
  if logic < 0.0 then invalid_arg "Delays.with_logic: negative delay";
  { t with logic }

let additive t ~cls ~width =
  match (cls : Op_class.t) with
  | Op_class.Wire -> 0.0
  | Op_class.Logic -> t.logic
  | Op_class.Arith -> t.arith_base +. (t.arith_per_bit *. float_of_int width)
  | Op_class.Black_box r -> (
      match List.assoc_opt r t.black_box with
      | Some d -> d
      | None -> t.logic)

let latency_cycles t ~device ~cls ~width =
  let d = additive t ~cls ~width in
  let period = Device.usable_period device in
  int_of_float (floor (d /. period))

let pp ppf t =
  Fmt.pf ppf "@[<v>logic=%.2fns arith=%.2f+%.3f/bit%a@]" t.logic t.arith_base
    t.arith_per_bit
    Fmt.(list ~sep:nop (fun ppf (r, d) -> Fmt.pf ppf " %s=%.2fns" r d))
    t.black_box
