type t = {
  k : int;
  lut_delay : float;
  t_clk : float;
  clock_uncertainty : float;
}

let make ?(k = 4) ?(lut_delay = 0.9) ?(clock_uncertainty = 0.0) ~t_clk () =
  if k < 2 then invalid_arg "Device.make: k < 2";
  if lut_delay < 0.0 || clock_uncertainty < 0.0 || t_clk <= 0.0 then
    invalid_arg "Device.make: negative delay";
  if t_clk -. clock_uncertainty <= lut_delay then
    invalid_arg "Device.make: clock period too short for a single LUT";
  { k; lut_delay; t_clk; clock_uncertainty }

let default = make ~t_clk:10.0 ()
let figure1 = make ~lut_delay:2.0 ~t_clk:5.0 ()
let usable_period d = d.t_clk -. d.clock_uncertainty

let levels_per_cycle d =
  let n = int_of_float (floor (usable_period d /. d.lut_delay)) in
  max 1 n

let pp ppf d =
  Fmt.pf ppf "@[<h>%d-LUT device, lut=%.2fns, Tclk=%.2fns, unc=%.2fns@]" d.k
    d.lut_delay d.t_clk d.clock_uncertainty
