lib/fpga/op_class.mli: Fmt
