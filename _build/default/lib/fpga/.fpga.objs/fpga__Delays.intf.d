lib/fpga/delays.mli: Device Fmt Op_class
