lib/fpga/delays.ml: Device Fmt List Op_class
