lib/fpga/resource.ml: Fmt Hashtbl List String
