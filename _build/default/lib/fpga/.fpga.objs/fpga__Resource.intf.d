lib/fpga/resource.mli: Fmt
