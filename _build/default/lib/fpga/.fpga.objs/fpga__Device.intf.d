lib/fpga/device.mli: Fmt
