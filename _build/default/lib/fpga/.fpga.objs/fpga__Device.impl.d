lib/fpga/device.ml: Fmt
