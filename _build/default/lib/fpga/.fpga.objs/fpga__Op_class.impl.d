lib/fpga/op_class.ml: Fmt String
