(** Classification of word-level operations for delay/area characterization.

    The IR maps each opcode to one of these classes; the FPGA library only
    ever reasons about classes, which keeps the device model independent of
    the IR. *)

type t =
  | Logic  (** bitwise AND/OR/XOR/NOT and 2:1 MUX — LUT fabric logic *)
  | Wire
      (** zero-cost rewiring: shift by constant, bit slice, concat,
          constants, primary inputs *)
  | Arith  (** ADD/SUB/CMP — carry-chain arithmetic, delay grows with width *)
  | Black_box of string
      (** operations that never map to LUTs (memory ports, DSP multiplies);
          the string names the resource class, e.g. ["bram_port"] *)

val equal : t -> t -> bool
val is_black_box : t -> bool
val is_mappable : t -> bool
(** [true] for classes whose nodes may appear inside a LUT cone ([Logic] and
    [Wire]); [Arith] nodes may be roots or, when narrow enough to pass the
    per-bit feasibility test, cone members. *)

val pp : t Fmt.t
