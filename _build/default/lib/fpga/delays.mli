(** Characterized (additive-model) operation delays.

    These are the pre-characterized delays a traditional scheduler assumes
    — the paper's "additive delay model". They stand in for the values the
    authors back-annotated from the commercial HLS tool's schedule report
    (Sec. 4). The mapping-aware flow only uses them for nodes that stay
    outside LUT cones (arithmetic carry chains and black boxes). *)

type t
(** A delay characterization table. *)

val default : t
(** Calibrated so the paper's anecdotes hold: a bitwise logic op costs
    1.37 ns (the delay the authors observed for XOR), constant shifts are
    free wiring, arithmetic grows linearly with width, black boxes have
    per-class delays. *)

val make :
  ?logic:float ->
  ?arith_base:float ->
  ?arith_per_bit:float ->
  ?black_box:(string * float) list ->
  unit -> t
(** Override individual characterizations. [black_box] maps resource-class
    names to delays; unknown classes fall back to [logic].
    @raise Invalid_argument on negative delays. *)

val with_logic : t -> logic:float -> t
(** Same characterization with the bitwise-logic delay replaced — used to
    build warm-start schedules that are feasible under a mapped (one LUT
    per logic op) delay model. *)

val additive : t -> cls:Op_class.t -> width:int -> float
(** Delay of one operation of class [cls] producing a [width]-bit result
    under the additive model. [Wire] is always 0. *)

val latency_cycles : t -> device:Device.t -> cls:Op_class.t -> width:int -> int
(** Number of whole clock cycles consumed before the result is available:
    [floor (additive / usable_period)] — 0 for ops that fit in a fraction of
    a cycle, following Eq. (10)'s [d_v / T_CP] term. *)

val pp : t Fmt.t
