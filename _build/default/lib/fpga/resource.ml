type budget = (string * int) list

let unlimited = []

let of_list l =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (r, n) ->
      if n < 0 then invalid_arg "Resource.of_list: negative count";
      if Hashtbl.mem seen r then invalid_arg "Resource.of_list: duplicate";
      Hashtbl.add seen r ())
    l;
  l

let limit budget r = List.assoc_opt r budget
let classes budget = List.sort String.compare (List.map fst budget)

let pp ppf budget =
  match budget with
  | [] -> Fmt.string ppf "unlimited"
  | _ ->
      Fmt.(list ~sep:sp (fun ppf (r, n) -> Fmt.pf ppf "%s:%d" r n)) ppf budget
