type t = Logic | Wire | Arith | Black_box of string

let equal a b =
  match (a, b) with
  | Logic, Logic | Wire, Wire | Arith, Arith -> true
  | Black_box x, Black_box y -> String.equal x y
  | (Logic | Wire | Arith | Black_box _), _ -> false

let is_black_box = function
  | Black_box _ -> true
  | Logic | Wire | Arith -> false

let is_mappable = function
  | Logic | Wire | Arith -> true
  | Black_box _ -> false

let pp ppf = function
  | Logic -> Fmt.string ppf "logic"
  | Wire -> Fmt.string ppf "wire"
  | Arith -> Fmt.string ppf "arith"
  | Black_box r -> Fmt.pf ppf "black-box(%s)" r
