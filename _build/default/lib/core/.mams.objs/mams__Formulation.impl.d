lib/core/formulation.ml: Array Bitdep Cuts Float Fmt Fpga Hashtbl Int Ir List Lp Option Printf Sched
