lib/core/flow.mli: Cuts Fmt Fpga Ir Lp Sched Stdlib
