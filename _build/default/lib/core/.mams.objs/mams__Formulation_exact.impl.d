lib/core/formulation_exact.ml: Array Cuts Fmt Formulation Fpga Ir List Lp Printf Sched String
