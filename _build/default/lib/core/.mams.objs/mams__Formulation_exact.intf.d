lib/core/formulation_exact.mli: Cuts Formulation Ir Lp Sched
