lib/core/flow.ml: Array Cuts Fmt Formulation Fpga List Logs Lp Option Printf Sched String Sys Techmap
