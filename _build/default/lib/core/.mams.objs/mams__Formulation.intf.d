lib/core/formulation.mli: Cuts Fpga Ir Lp Sched
