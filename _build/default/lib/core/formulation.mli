(** The mapping-aware modulo scheduling MILP (paper Sec. 3.2), in the
    compact {e lifetime} form used by default (DESIGN.md):

    - cover constraints, Eq. (2)–(4), on cut-selection binaries [c_{v,i}];
    - an integer cycle variable [S_v] and continuous start time [L_v] per
      node instead of the paper's [s_{v,t}] one-hot binaries ([s_{v,t}]
      binaries are still created for black boxes under finite resource
      budgets, where Eq. (14) needs the modulo phase);
    - chaining/cycle-time constraints, Eq. (8)–(9), conditioned on cut
      selection with big-M terms, with the selected cut's delay entering as
      the linear expression [Σ_j delay_j · c_{v,j}];
    - one register-lifetime variable [reg_v] per node with one constraint
      per (cut, leaf) pair replacing the O(V·M) def/kill/live system of
      Eq. (10)–(12); the objective value Σ Bits·reg equals Eq. (13)+(15)'s
      register count (property-tested against {!Formulation_exact});
    - objective Eq. (15): [α · Σ area_i · c_{v,i} + β · Σ Bits(v) · reg_v].

    The delay charged to a selected cut is injectable so the same builder
    serves MILP-map (mapped delays) and MILP-base (additive characterized
    delays with trivial cuts only). *)

type config = {
  device : Fpga.Device.t;
  delays : Fpga.Delays.t;
  resources : Fpga.Resource.budget;
  ii : int;
  max_latency : int;  (** bound [M] on pipeline cycles, from the baseline *)
  alpha : float;  (** LUT weight in Eq. (15) *)
  beta : float;  (** register weight in Eq. (15) *)
  cut_delay : Ir.Cdfg.t -> Cuts.cut -> float;
      (** delay model for selected cuts *)
}

val mapped_delay : device:Fpga.Device.t -> delays:Fpga.Delays.t ->
  Ir.Cdfg.t -> Cuts.cut -> float
(** {!Cuts.delay}: one LUT level per mapped cone (MILP-map). *)

val additive_delay : delays:Fpga.Delays.t -> Ir.Cdfg.t -> Cuts.cut -> float
(** The characterized delay of the root operation regardless of the cone
    (MILP-base / traditional scheduling). *)

type t
(** A built formulation: the model plus variable handles. *)

val build : config -> Ir.Cdfg.t -> Cuts.t -> t

val model : t -> Lp.Model.t

val branch_priorities : t -> int array
(** Branching guidance for {!Lp.Milp.solve}: cut-selection binaries first
    (they shape area and timing), then roots and resource one-hots, then
    cycle variables. *)

val incumbent_of_schedule :
  t -> Sched.Schedule.t -> Sched.Cover.t -> float array
(** Translate a feasible (schedule, cover) pair — typically the heuristic
    baseline with the all-trivial cover — into a warm-start assignment.
    @raise Invalid_argument if the pair does not fit the formulation. *)

val extract : t -> Lp.Milp.result -> Sched.Schedule.t * Sched.Cover.t
(** Read the schedule and cover out of a feasible MILP result. *)

val size : t -> string
(** Human-readable variable/constraint counts (Table 2 commentary). *)

type leaf_info = {
  has_comb : bool;  (** some dist-0 edge into the cone *)
  min_reg_dist : int option;  (** tightest registered entry *)
  max_dist : int;  (** worst-case lifetime distance *)
}

val leaf_infos : Ir.Cdfg.t -> Cuts.cut -> (int * leaf_info) list
(** How each leaf's value enters the cone — shared with the paper-exact
    formulation. *)
