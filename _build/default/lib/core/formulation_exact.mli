(** The paper's MILP exactly as printed (Sec. 3.2, Eq. 2–15):

    - one-hot cycle binaries [s_{v,t}] for {e every} node (Eq. 5–6);
    - dependence constraints per CDFG edge (Eq. 7);
    - cycle-time constraints with per-operation delays (Eq. 8) and the
      printed big-M-free chaining form (Eq. 9);
    - register counting through [def]/[kill]/[live] binaries per node and
      cycle (Eq. 10–12), with the loop-carried kill index shifted by
      [II·dist] (the paper leaves the distance implicit);
    - modulo resource constraints (Eq. 14);
    - objective [α · Σ Bits(v)·root_v + β · Σ_m Reg(m)] (Eq. 13, 15).

    This formulation is O(V·M) larger than the default compact one
    ({!Formulation}); the repository keeps it as the fidelity reference —
    property tests check both produce the same optimal area/register
    objective on small kernels — and as the DESIGN.md ablation A1. *)

type t

val build : Formulation.config -> Ir.Cdfg.t -> Cuts.t -> t
val model : t -> Lp.Model.t
val extract : t -> Lp.Milp.result -> Sched.Schedule.t * Sched.Cover.t
val size : t -> string

val objective_breakdown :
  t -> Lp.Milp.result -> lut_bits:int ref -> reg_bits:int ref -> unit
(** Reads the two Eq. 15 terms back out of a solution (tests). *)
