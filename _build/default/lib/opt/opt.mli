(** Frontend optimization passes on the word-level CDFG — the stand-in for
    the "compilation and other optimizations" the paper's flow applies
    before scheduling (Sec. 4). All passes preserve the graph's
    input/output semantics (property-tested against the simulator) and the
    relative order of primary outputs.

    Passes:
    - {!dead_code}: drop nodes unreachable (backward, through loop-carried
      edges too) from any primary output;
    - {!fold_constants}: evaluate operations whose operands are all
      constants, and apply algebraic identities
      ([x^0], [x&0], [x&ones], [x|0], [x|ones], [x+0], [x-0],
      [mux(const, a, b)], [shl/shr by 0], self-xor, self-and/or);
    - {!cse}: merge structurally identical operations (same opcode, same
      operand edges including distances and reset values); inputs and
      black boxes are never merged;
    - {!simplify}: the three passes iterated to a fixed point. *)

type stats = { removed : int; folded : int; merged : int; rounds : int }

val dead_code : Ir.Cdfg.t -> Ir.Cdfg.t * int
(** Returns the pruned graph and the number of nodes removed. *)

val fold_constants : Ir.Cdfg.t -> Ir.Cdfg.t * int
(** Returns the rewritten graph and the number of nodes folded or
    bypassed. *)

val cse : Ir.Cdfg.t -> Ir.Cdfg.t * int
(** Returns the deduplicated graph and the number of nodes merged. *)

val simplify : ?max_rounds:int -> Ir.Cdfg.t -> Ir.Cdfg.t * stats
(** Fixed-point pipeline (default [max_rounds = 8]). *)

val pp_stats : stats Fmt.t
