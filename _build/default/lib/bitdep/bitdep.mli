(** Bit-level dependence tracking on the word-level CDFG (paper Sec. 3.1).

    For every output bit of an operation, [dep] reports which bits of which
    operand {e nodes} it depends on. The three classes of the paper are
    implemented — bitwise (one bit per operand), shift (one shifted bit),
    arithmetic (all lower bits of both operands) — plus constant-aware
    refinements: comparing against a constant [c] with [tz] trailing zeros
    only reads bits [>= tz] (this is how the paper's "[B >= 0] is an MSB
    test" observation falls out), masking with a constant passes bits
    through or zeroes them, and adding a constant leaves bits below [tz c]
    untouched.

    [support] closes [dep] transitively inside a cone, yielding the exact
    set of {e boundary bits} a K-LUT implementing that cone's bit would
    need — the feasibility measure for word-level cuts. *)

module Bitpos : sig
  type t = {
    node : int;
    bit : int;
    dist : int;
        (** 0 for a combinational read; [> 0] when the bit is read through
            a pipeline register carrying a loop-carried dependence *)
  }

  val compare : t -> t -> int
  val pp : t Fmt.t

  module Set : Set.S with type elt = t
end

module Int_set : Set.S with type elt = int

type one_step = {
  reads : Bitpos.t list;  (** operand bits this output bit depends on *)
  passthrough : bool;
      (** [true] iff the output bit equals the (then unique) read bit —
          pure rewiring that needs no LUT *)
}

val dep : Ir.Cdfg.t -> node:int -> bit:int -> one_step
(** One-step dependence of bit [bit] of [node], following the paper's
    [DEP] definitions with constant refinements. Bits of constant operands
    are omitted (they are hardwired into the LUT mask).
    @raise Invalid_argument if [bit] is outside the node's width. *)

type bit_support = {
  bits : Bitpos.Set.t;  (** boundary bits feeding this output bit *)
  pure_wire : bool;
      (** the bit is a plain copy of a single boundary bit (or a constant)
          routed only through wiring — it needs no LUT *)
}

val support :
  Ir.Cdfg.t -> root:int -> cone:Int_set.t -> bit:int -> bit_support
(** Transitive closure of [dep] from [root]'s output bit [bit], expanding
    through nodes in [cone] and stopping at nodes outside it; registered
    ([dist > 0]) reads always stop, even if the producer is in the cone.
    [cone] must contain [root]. *)

val max_support_width : Ir.Cdfg.t -> root:int -> cone:Int_set.t -> int
(** Max over the root's output bits of the boundary-bit support size — a
    cone is K-feasible iff this is [<= K]. *)

val lut_bits : Ir.Cdfg.t -> root:int -> cone:Int_set.t -> int
(** Number of output bits that actually need a LUT: bits with two or more
    support bits, or a single support bit reached through non-wiring
    logic. Constant and pass-through bits are free. *)
