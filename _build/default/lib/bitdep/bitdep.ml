module Bitpos = struct
  module T = struct
    type t = { node : int; bit : int; dist : int }

    let compare a b =
      let c = Int.compare a.node b.node in
      if c <> 0 then c
      else
        let c = Int.compare a.bit b.bit in
        if c <> 0 then c else Int.compare a.dist b.dist
  end

  include T

  let pp ppf { node; bit; dist } =
    if dist = 0 then Fmt.pf ppf "n%d[%d]" node bit
    else Fmt.pf ppf "n%d[%d]@%d" node bit dist

  module Set = Set.Make (T)
end

module Int_set = Set.Make (Int)

type one_step = { reads : Bitpos.t list; passthrough : bool }

let bit_of v i = Int64.logand (Int64.shift_right_logical v i) 1L

(* Index of the lowest set bit of [v]; [width] when v = 0. *)
let trailing_zeros v ~width =
  let rec go i = if i >= width then width else
      if Int64.equal (bit_of v i) 1L then i else go (i + 1) in
  go 0

let const_of g (e : Ir.Cdfg.edge) =
  match Ir.Cdfg.op g e.src with
  | Ir.Op.Const c when e.dist = 0 -> Some c
  | _ -> None

let mk (e : Ir.Cdfg.edge) bit = Bitpos.{ node = e.src; bit; dist = e.dist }

(* Is this bit of the operand statically a known constant? Chases constants
   through wiring ops (shifts, slices, concats) up to a small depth —
   enough to fold the ubiquitous [x ^ (x >> s)] top bits. *)
let rec known_bit g node bit ~depth =
  if depth <= 0 then None
  else
    let nd = Ir.Cdfg.node g node in
    let via i bit' =
      let e = nd.preds.(i) in
      if e.Ir.Cdfg.dist > 0 then None else known_bit g e.src bit' ~depth:(depth - 1)
    in
    match nd.op with
    | Ir.Op.Const c -> Some (bit_of c bit)
    | Ir.Op.Shl s -> if bit < s then Some 0L else via 0 (bit - s)
    | Ir.Op.Shr s ->
        let w = Ir.Cdfg.width g nd.preds.(0).Ir.Cdfg.src in
        if bit + s >= w then Some 0L else via 0 (bit + s)
    | Ir.Op.Slice { lo; hi = _ } -> via 0 (lo + bit)
    | Ir.Op.Concat ->
        let w_low = Ir.Cdfg.width g nd.preds.(1).Ir.Cdfg.src in
        if bit < w_low then via 1 bit else via 0 (bit - w_low)
    | Ir.Op.Input _ | Ir.Op.Not | Ir.Op.Bitwise _ | Ir.Op.Add | Ir.Op.Sub
    | Ir.Op.Cmp _ | Ir.Op.Mux | Ir.Op.Black_box _ ->
        None

let known_edge_bit g (e : Ir.Cdfg.edge) bit =
  if e.dist > 0 then None else known_bit g e.src bit ~depth:4

(* All bits [lo..hi] of an operand, skipping constants. *)
let range_reads g e ~lo ~hi =
  match const_of g e with
  | Some _ -> []
  | None ->
      let w = Ir.Cdfg.width g e.src in
      let hi = min hi (w - 1) in
      let rec go i acc = if i > hi then List.rev acc else go (i + 1) (mk e i :: acc) in
      if lo > hi then [] else go lo []

let no_deps = { reads = []; passthrough = true }
let opaque reads = { reads; passthrough = false }
let wire read = { reads = [ read ]; passthrough = true }

(* Dependence of a binary bitwise op's output bit on its operands, with
   constant-mask refinement. *)
let bitwise_dep g (bw : Ir.Op.bitwise) e1 e2 bit =
  let dep_one kind e other_const =
    (* [other_const] is the constant operand's bit value *)
    match (kind, other_const) with
    | Ir.Op.And, 0L -> no_deps (* x & 0 = 0 *)
    | Ir.Op.And, _ -> wire (mk e bit) (* x & 1 = x *)
    | Ir.Op.Or, 0L -> wire (mk e bit)
    | Ir.Op.Or, _ -> no_deps (* x | 1 = 1 *)
    | Ir.Op.Xor, 0L -> wire (mk e bit)
    | Ir.Op.Xor, _ -> opaque [ mk e bit ] (* inversion: needs a LUT *)
  in
  match (known_edge_bit g e1 bit, known_edge_bit g e2 bit) with
  | Some _, Some _ -> no_deps
  | Some c, None -> dep_one bw e2 c
  | None, Some c -> dep_one bw e1 c
  | None, None -> opaque [ mk e1 bit; mk e2 bit ]

(* x OP c for an unsigned comparison against constant [c] of width [w]:
   support is the bits of x at positions >= tz, where tz comes from the
   equivalent >=-form threshold. Returns None when the result is constant. *)
let cmp_const_support (c : Ir.Op.cmp) ~value ~width =
  let maxv =
    if width >= 64 then Int64.minus_one
    else Int64.sub (Int64.shift_left 1L width) 1L
  in
  let ge_threshold =
    match c with
    | Ir.Op.Ge | Ir.Op.Lt -> Some value (* x >= c / x < c *)
    | Ir.Op.Gt | Ir.Op.Le ->
        (* x > c <=> x >= c+1, constant when c = max *)
        if Int64.equal value maxv then None else Some (Int64.add value 1L)
    | Ir.Op.Eq | Ir.Op.Ne -> Some 0L (* handled by caller: full support *)
  in
  match c with
  | Ir.Op.Eq | Ir.Op.Ne -> Some 0 (* all bits *)
  | Ir.Op.Ge | Ir.Op.Lt | Ir.Op.Gt | Ir.Op.Le -> (
      match ge_threshold with
      | None -> None (* constant result *)
      | Some t ->
          if Int64.equal t 0L then None (* x >= 0 is constant true *)
          else Some (trailing_zeros t ~width))

let flip_cmp (c : Ir.Op.cmp) : Ir.Op.cmp =
  match c with
  | Ir.Op.Eq -> Ir.Op.Eq
  | Ir.Op.Ne -> Ir.Op.Ne
  | Ir.Op.Lt -> Ir.Op.Gt
  | Ir.Op.Le -> Ir.Op.Ge
  | Ir.Op.Gt -> Ir.Op.Lt
  | Ir.Op.Ge -> Ir.Op.Le

let dep g ~node ~bit =
  let nd = Ir.Cdfg.node g node in
  if bit < 0 || bit >= nd.width then
    invalid_arg
      (Printf.sprintf "Bitdep.dep: bit %d out of width %d of node %d" bit
         nd.width node);
  let p i = nd.preds.(i) in
  match nd.op with
  | Ir.Op.Input _ | Ir.Op.Const _ -> no_deps
  | Ir.Op.Not -> opaque [ mk (p 0) bit ]
  | Ir.Op.Bitwise bw -> bitwise_dep g bw (p 0) (p 1) bit
  | Ir.Op.Shl s -> if bit - s >= 0 then wire (mk (p 0) (bit - s)) else no_deps
  | Ir.Op.Shr s ->
      let w = Ir.Cdfg.width g (p 0).src in
      if bit + s < w then wire (mk (p 0) (bit + s)) else no_deps
  | Ir.Op.Slice { lo; hi = _ } -> wire (mk (p 0) (lo + bit))
  | Ir.Op.Concat ->
      let w_low = Ir.Cdfg.width g (p 1).src in
      if bit < w_low then wire (mk (p 1) bit) else wire (mk (p 0) (bit - w_low))
  | Ir.Op.Add | Ir.Op.Sub -> (
      let full () =
        opaque (range_reads g (p 0) ~lo:0 ~hi:bit
                @ range_reads g (p 1) ~lo:0 ~hi:bit)
      in
      let refined e c =
        (* x +/- c: bits below tz(c) pass through; higher bits read from
           tz(c) upward. For Sub the two's complement shares tz with c. *)
        let w = nd.width in
        if Int64.equal c 0L then wire (mk e bit)
        else
          let tz = trailing_zeros c ~width:w in
          if bit < tz then wire (mk e bit)
          else opaque (range_reads g e ~lo:tz ~hi:bit)
      in
      match (nd.op, const_of g (p 0), const_of g (p 1)) with
      | _, Some _, Some _ -> no_deps
      | Ir.Op.Add, Some c, None -> refined (p 1) c
      | (Ir.Op.Add | Ir.Op.Sub), None, Some c -> refined (p 0) c
      | _, _, _ -> full ())
  | Ir.Op.Cmp c -> (
      let full () =
        let w = Ir.Cdfg.width g (p 0).src in
        opaque (range_reads g (p 0) ~lo:0 ~hi:(w - 1)
                @ range_reads g (p 1) ~lo:0 ~hi:(w - 1))
      in
      let against e cmp value =
        let w = Ir.Cdfg.width g e.Ir.Cdfg.src in
        match cmp_const_support cmp ~value ~width:w with
        | None -> no_deps
        | Some lo -> opaque (range_reads g e ~lo ~hi:(w - 1))
      in
      match (const_of g (p 0), const_of g (p 1)) with
      | Some _, Some _ -> no_deps
      | None, Some v -> against (p 0) c v
      | Some v, None -> against (p 1) (flip_cmp c) v
      | None, None -> full ())
  | Ir.Op.Mux -> (
      match const_of g (p 0) with
      | Some c -> wire (mk (if Int64.equal c 0L then p 2 else p 1) bit)
      | None ->
          let arm_reads =
            List.filter_map
              (fun e -> match const_of g e with
                | Some _ -> None
                | None -> Some (mk e bit))
              [ p 1; p 2 ]
          in
          opaque (mk (p 0) 0 :: arm_reads))
  | Ir.Op.Black_box _ ->
      let all =
        Array.to_list nd.preds
        |> List.concat_map (fun e ->
               range_reads g e ~lo:0 ~hi:(Ir.Cdfg.width g e.Ir.Cdfg.src - 1))
      in
      opaque all

type bit_support = { bits : Bitpos.Set.t; pure_wire : bool }

(* Shared-memo analysis of every output bit of [root] within [cone]. *)
let analyze g ~root ~cone =
  if not (Int_set.mem root cone) then
    invalid_arg "Bitdep.support: root not in cone";
  let memo : (int * int, bit_support) Hashtbl.t = Hashtbl.create 64 in
  let rec go node bit =
    match Hashtbl.find_opt memo (node, bit) with
    | Some r -> r
    | None ->
        (* Seed with an empty result to cut accidental cycles; the dist-0
           subgraph is acyclic so this is never observed on valid input. *)
        Hashtbl.replace memo (node, bit)
          { bits = Bitpos.Set.empty; pure_wire = true };
        let step = dep g ~node ~bit in
        let expand (acc_bits, acc_wire) (r : Bitpos.t) =
          if r.dist > 0 || not (Int_set.mem r.node cone) then
            (Bitpos.Set.add r acc_bits, acc_wire)
          else
            let sub = go r.node r.bit in
            (Bitpos.Set.union sub.bits acc_bits, acc_wire && sub.pure_wire)
        in
        let bits, inner_wire =
          List.fold_left expand (Bitpos.Set.empty, true) step.reads
        in
        let r = { bits; pure_wire = step.passthrough && inner_wire } in
        Hashtbl.replace memo (node, bit) r;
        r
  in
  Array.init (Ir.Cdfg.width g root) (fun bit -> go root bit)

let support g ~root ~cone ~bit = (analyze g ~root ~cone).(bit)

let max_support_width g ~root ~cone =
  Array.fold_left
    (fun best s -> max best (Bitpos.Set.cardinal s.bits))
    0 (analyze g ~root ~cone)

let lut_bits g ~root ~cone =
  Array.fold_left
    (fun acc s ->
      let n = Bitpos.Set.cardinal s.bits in
      if n >= 2 || (n = 1 && not s.pure_wire) then acc + 1 else acc)
    0 (analyze g ~root ~cone)
