let coeff_table ~width =
  Array.init 16 (fun i ->
      Bench_util.mask ~width (Int64.of_int ((i * 157) + 11)))

let black_box_handler ~width ~kind args =
  match kind with
  | "coeff_rom" -> (coeff_table ~width).(Int64.to_int args.(0) land 0xf)
  | _ -> invalid_arg ("Gsm.black_box_handler: unknown kind " ^ kind)

(* Saturation rails: three-quarters of the range, and one quarter. *)
let rail_hi ~width = Int64.of_int (3 * (1 lsl (width - 2)))
let rail_lo ~width = Int64.of_int (1 lsl (width - 2))

(* One saturating accumulate: acc' = clamp(acc + term). *)
let saturate b ~width v =
  let hi = Ir.Builder.const b ~width (rail_hi ~width) in
  let lo = Ir.Builder.const b ~width (rail_lo ~width) in
  let over = Ir.Builder.cmp b Ir.Op.Gt v hi in
  let under = Ir.Builder.cmp b Ir.Op.Lt v lo in
  let clamped_low = Ir.Builder.mux b ~cond:under lo v in
  Ir.Builder.mux b ~cond:over hi clamped_low

let saturate_ref ~width v =
  let hi = rail_hi ~width and lo = rail_lo ~width in
  if Int64.unsigned_compare v hi > 0 then hi
  else if Int64.unsigned_compare v lo < 0 then lo
  else v

let stage_shift i = (i mod 3) + 1

let build ?(width = 12) ?(stages = 3) () =
  if stages < 1 then invalid_arg "Gsm.build: stages < 1";
  let b = Ir.Builder.create () in
  let s = Ir.Builder.input b ~width "s" in
  let c = Ir.Builder.input b ~width:4 "c" in
  let coeff =
    Ir.Builder.black_box b ~kind:"coeff_rom" ~resource:"bram_port" ~width [ c ]
  in
  let acc0 = Ir.Builder.add b s coeff in
  let rec chain i acc =
    if i >= stages then acc
    else begin
      let term = Ir.Builder.shr b acc (stage_shift i) in
      let sum = Ir.Builder.add b acc term in
      chain (i + 1) (saturate b ~width sum)
    end
  in
  let out = chain 0 (saturate b ~width acc0) in
  Ir.Builder.output b out;
  Ir.Builder.finish b

let reference ~width ~stages ~s ~c =
  let m = Bench_util.mask ~width in
  let coeff = (coeff_table ~width).(Int64.to_int (Int64.logand c 0xfL)) in
  let acc0 = saturate_ref ~width (m (Int64.add (m s) coeff)) in
  let rec chain i acc =
    if i >= stages then acc
    else
      let term = Int64.shift_right_logical acc (stage_shift i) in
      let sum = m (Int64.add acc term) in
      chain (i + 1) (saturate_ref ~width sum)
  in
  chain 0 acc0
