let templates ~width ~count =
  List.init count (fun i ->
      Bench_util.mask ~width
        (Int64.of_int (0x5a3c96c3 lsr (7 * i) land 0xffffffff)))

let index_width count =
  let rec go n acc = if n <= 1 then max 1 acc else go (n lsr 1) (acc + 1) in
  go (count - 1) 1

let build ?(width = 8) ?(count = 2) () =
  if count < 2 then invalid_arg "Dr.build: need >= 2 templates";
  let b = Ir.Builder.create () in
  let p = Ir.Builder.input b ~width "p" in
  let iw = index_width count in
  let distances =
    List.map
      (fun t ->
        let tc = Ir.Builder.const b ~width t in
        let diff = Ir.Builder.xor_ b p tc in
        Bench_util.popcount b diff ~width)
      (templates ~width ~count)
  in
  (* running (best distance, best index) through compare/mux pairs *)
  let best =
    List.fold_left
      (fun acc (i, d) ->
        match acc with
        | None -> Some (d, Ir.Builder.const b ~width:iw 0L)
        | Some (bd, bi) ->
            let closer = Ir.Builder.cmp b Ir.Op.Lt d bd in
            let idx = Ir.Builder.const b ~width:iw (Int64.of_int i) in
            let bd' = Ir.Builder.mux b ~cond:closer d bd in
            let bi' = Ir.Builder.mux b ~cond:closer idx bi in
            Some (bd', bi'))
      None
      (List.mapi (fun i d -> (i, d)) distances)
  in
  (match best with
  | Some (_, bi) -> Ir.Builder.output b bi
  | None -> assert false);
  Ir.Builder.finish b

let reference ~width ~count ~p =
  let p = Bench_util.mask ~width p in
  let dist t = Bench_util.popcount_ref ~width (Int64.logxor p t) in
  let _, best_i, _ =
    List.fold_left
      (fun (i, bi, bd) t ->
        let d = dist t in
        if Int64.unsigned_compare d bd < 0 then (i + 1, i, d)
        else (i + 1, bi, bd))
      (0, 0, Int64.max_int)
      (templates ~width ~count)
  in
  Int64.of_int best_i
