(** GFMUL kernel (Table 1): Galois-field multiplication of two variable
    operands by the shift-and-xor (Russian peasant) method, fully unrolled
    — [width] iterations of conditional accumulate and [xtime]. The paper
    uses GF(2^8); the default GF(2^4) keeps the unrolled DFG MILP-sized
    (DESIGN.md). *)

val build : ?width:int -> unit -> Ir.Cdfg.t
(** Inputs [a] and [b]; output [a*b] in GF(2^width) with the field
    polynomial [Rs.poly_for]. *)

val reference : width:int -> a:int64 -> b:int64 -> int64
