lib/benchmarks/mt.ml: Bench_util Int64 Ir
