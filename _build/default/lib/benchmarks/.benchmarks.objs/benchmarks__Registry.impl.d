lib/benchmarks/registry.ml: Aes Clz Cordic Dr Fpga Gfmul Gsm Ir List Mt Rs String Xorr
