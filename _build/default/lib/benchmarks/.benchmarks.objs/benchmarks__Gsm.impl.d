lib/benchmarks/gsm.ml: Array Bench_util Int64 Ir
