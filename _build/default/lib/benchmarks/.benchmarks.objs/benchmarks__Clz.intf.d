lib/benchmarks/clz.mli: Ir
