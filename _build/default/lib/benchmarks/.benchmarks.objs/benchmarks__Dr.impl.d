lib/benchmarks/dr.ml: Bench_util Int64 Ir List
