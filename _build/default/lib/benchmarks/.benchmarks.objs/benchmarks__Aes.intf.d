lib/benchmarks/aes.mli: Ir
