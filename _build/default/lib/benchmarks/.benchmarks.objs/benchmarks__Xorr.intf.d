lib/benchmarks/xorr.mli: Ir
