lib/benchmarks/registry.mli: Fpga Ir
