lib/benchmarks/xorr.ml: Array Bench_util Int64 Ir List Printf
