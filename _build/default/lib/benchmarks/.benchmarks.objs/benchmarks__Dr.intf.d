lib/benchmarks/dr.mli: Ir
