lib/benchmarks/bench_util.mli: Ir
