lib/benchmarks/bench_util.ml: Int64 Ir List
