lib/benchmarks/cordic.mli: Ir
