lib/benchmarks/mt.mli: Ir
