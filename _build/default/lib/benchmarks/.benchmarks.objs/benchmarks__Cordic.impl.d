lib/benchmarks/cordic.ml: Bench_util Int64 Ir
