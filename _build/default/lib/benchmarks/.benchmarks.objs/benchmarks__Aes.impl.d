lib/benchmarks/aes.ml: Array Bench_util Int64 Ir List Printf
