lib/benchmarks/gsm.mli: Ir
