lib/benchmarks/clz.ml: Bench_util Int64 Ir
