lib/benchmarks/gfmul.mli: Ir
