lib/benchmarks/gfmul.ml: Bench_util Int64 Ir Rs
