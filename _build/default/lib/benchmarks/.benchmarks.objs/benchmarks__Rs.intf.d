lib/benchmarks/rs.mli: Ir
