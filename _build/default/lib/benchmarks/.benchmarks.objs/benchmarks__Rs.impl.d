lib/benchmarks/rs.ml: Array Int64 Ir List
