let mask ~width v =
  Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let eq_zero b ~chunk v =
  let width = Ir.Builder.width_of b v in
  let rec chunks lo acc =
    if lo >= width then List.rev acc
    else
      let hi = min (width - 1) (lo + chunk - 1) in
      let part = Ir.Builder.slice b v ~lo ~hi in
      let zero = Ir.Builder.const b ~width:(hi - lo + 1) 0L in
      let test = Ir.Builder.cmp b Ir.Op.Eq part zero in
      chunks (hi + 1) (test :: acc)
  in
  match chunks 0 [] with
  | [] -> invalid_arg "Bench_util.eq_zero: zero width"
  | [ t ] -> t
  | tests -> Ir.Builder.reduce b (fun b x y -> Ir.Builder.and_ b x y) tests

let mux_const b ~width ~cond if_true if_false =
  let t = Ir.Builder.const b ~width if_true in
  let f = Ir.Builder.const b ~width if_false in
  Ir.Builder.mux b ~cond t f

let xor_reduce b values =
  Ir.Builder.reduce b (fun b x y -> Ir.Builder.xor_ b x y) values

(* Classic SWAR population count: sum adjacent 1-bit fields, then 2-bit
   fields, and so on up to the full width. *)
let swar_masks =
  [
    (1, 0x5555555555555555L);
    (2, 0x3333333333333333L);
    (4, 0x0f0f0f0f0f0f0f0fL);
    (8, 0x00ff00ff00ff00ffL);
    (16, 0x0000ffff0000ffffL);
  ]

let popcount b v ~width =
  if width land (width - 1) <> 0 || width > 32 then
    invalid_arg "Bench_util.popcount: width must be a power of two <= 32";
  let steps = List.filter (fun (s, _) -> s < width) swar_masks in
  List.fold_left
    (fun acc (shift, m) ->
      let m = Ir.Builder.const b ~width (mask ~width m) in
      let low = Ir.Builder.and_ b acc m in
      let shifted = Ir.Builder.shr b acc shift in
      let high = Ir.Builder.and_ b shifted m in
      Ir.Builder.add b low high)
    v steps

let popcount_ref ~width v =
  let v = mask ~width v in
  let steps = List.filter (fun (s, _) -> s < width) swar_masks in
  List.fold_left
    (fun acc (shift, m) ->
      let m = mask ~width m in
      let low = Int64.logand acc m in
      let high = Int64.logand (Int64.shift_right_logical acc shift) m in
      mask ~width (Int64.add low high))
    v steps

let eq_zero_ref v = if Int64.equal v 0L then 1L else 0L
