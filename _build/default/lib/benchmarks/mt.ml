let upper ~width = Bench_util.mask ~width (Int64.shift_left (-1L) (width / 2))
let lower ~width = Int64.sub (Int64.shift_left 1L (width / 2)) 1L
let matrix_a ~width = Bench_util.mask ~width 0x9908L
let temper_c1 ~width = Bench_util.mask ~width 0x9d2cL
let temper_c2 ~width = Bench_util.mask ~width 0xefc6L

let build ?(width = 16) () =
  if width < 8 || width mod 2 <> 0 then
    invalid_arg "Mt.build: width must be even and >= 8";
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width "x" in
  let s = Ir.Builder.feedback b ~width ~init:0x1234L ~dist:1 in
  (* state update: mix the upper half of the state with the lower half of
     the fresh word, twist by one bit with a conditional matrix xor *)
  let cu = Ir.Builder.const b ~width (upper ~width) in
  let cl = Ir.Builder.const b ~width (lower ~width) in
  let hi = Ir.Builder.and_ b s cu in
  let lo = Ir.Builder.and_ b x cl in
  let mixed = Ir.Builder.or_ b ~name:"mixed" hi lo in
  let lsb = Ir.Builder.slice b mixed ~lo:0 ~hi:0 in
  let sh = Ir.Builder.shr b mixed 1 in
  let mag = Bench_util.mux_const b ~width ~cond:lsb (matrix_a ~width) 0L in
  let snew = Ir.Builder.xor_ b ~name:"snew" sh mag in
  Ir.Builder.drive b ~cell:s snew;
  (* tempering *)
  let t1 = Ir.Builder.xor_ b snew (Ir.Builder.shr b snew (width / 2 - 1)) in
  let m1 = Ir.Builder.const b ~width (temper_c1 ~width) in
  let t2 = Ir.Builder.xor_ b t1 (Ir.Builder.and_ b (Ir.Builder.shl b t1 3) m1) in
  let m2 = Ir.Builder.const b ~width (temper_c2 ~width) in
  let t3 = Ir.Builder.xor_ b t2 (Ir.Builder.and_ b (Ir.Builder.shl b t2 5) m2) in
  let t4 = Ir.Builder.xor_ b ~name:"y" t3 (Ir.Builder.shr b t3 (width / 2 + 2)) in
  Ir.Builder.output b t4;
  Ir.Builder.finish b

let reference ~width ~state ~x =
  let m = Bench_util.mask ~width in
  let state = m state and x = m x in
  let mixed =
    Int64.logor (Int64.logand state (upper ~width))
      (Int64.logand x (lower ~width))
  in
  let sh = Int64.shift_right_logical mixed 1 in
  let mag =
    if Int64.equal (Int64.logand mixed 1L) 1L then matrix_a ~width else 0L
  in
  let snew = Int64.logxor sh mag in
  let t1 = Int64.logxor snew (Int64.shift_right_logical snew (width / 2 - 1)) in
  let t2 =
    Int64.logxor t1
      (Int64.logand (m (Int64.shift_left t1 3)) (temper_c1 ~width))
  in
  let t3 =
    Int64.logxor t2
      (Int64.logand (m (Int64.shift_left t2 5)) (temper_c2 ~width))
  in
  let t4 = Int64.logxor t3 (Int64.shift_right_logical t3 ((width / 2) + 2)) in
  (snew, m t4)
