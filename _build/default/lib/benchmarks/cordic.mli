(** CORDIC application (Table 1, "Scientific Computing"): fully unrolled
    rotation-mode coordinate rotations. Each iteration conditionally
    adds/subtracts arc-tangent-shifted coordinate pairs based on the sign
    of the residual angle — the sign test is a pure MSB slice, so it is
    free wiring for the mapper while the additive model charges the whole
    add/mux chain. All arithmetic is fixed-point unsigned with a sign bit
    convention baked into the MSB. *)

val build : ?width:int -> ?iterations:int -> unit -> Ir.Cdfg.t
(** Defaults: [width = 8], [iterations = 4]. Inputs [x0], [y0], [z0];
    outputs the rotated [x], [y] and residual [z]. *)

val reference :
  width:int -> iterations:int -> x0:int64 -> y0:int64 -> z0:int64 ->
  int64 * int64 * int64
