(** Reed-Solomon encoder benchmarks (paper Fig. 1–2 and the RS row of
    Table 1).

    [kernel] is the data-flow graph of the paper's Figure 1: one LFSR tap
    of a Reed-Solomon encoder —

    {v
      u1 = t xor (t >> 1)  (symbol pre-scaling, two levels)
      u = u1 xor (u1 << 1)
      A = s << 1           (shift of the running state, pure wiring)
      B = u xor A          (mix in the incoming symbol)
      E : s <- B           (loop-carried state, distance 1)
      C = B >= 2^(w-1)     (the paper's "B >= 0" sign test: an MSB probe)
      D = C ? B xor poly : B   (conditional reduction, primary output)
    v}

    Adapted from the figure so the recurrence (one xor) meets II = 1 under
    both the additive and the mapped delay model; see DESIGN.md.

    [full] is a multi-tap GF(2^w) LFSR encoder: every generator-polynomial
    tap multiplies the feedback symbol with a constant via shift-and-xor
    Galois multiplication and folds it into the parity register chain, with
    the syndrome symbol streamed in each cycle. *)

val kernel : ?width:int -> unit -> Ir.Cdfg.t
(** Default [width = 8]; Figure 2 uses [width = 2]. *)

val kernel_reference : width:int -> t:int64 -> state:int64 -> int64 * int64
(** One iteration of the kernel in software:
    [(next_state, primary_output)]. *)

val full : ?width:int -> ?taps:int -> unit -> Ir.Cdfg.t
(** Default [width = 4], [taps = 4] parity symbols. *)

val full_reference :
  width:int -> taps:int -> data:int64 list -> int64 list
(** Feed [data] symbols through the software encoder; returns the final
    parity registers (low tap first). *)

(** {1 Galois-field building blocks} (shared with GFMUL and AES) *)

val poly_for : width:int -> int64
(** Field polynomial's low bits (0x1d masked to the width). *)

val xtime : Ir.Builder.t -> width:int -> Ir.Builder.value -> Ir.Builder.value
(** Multiply by x in GF(2^width): shift, MSB probe, conditional reduce. *)

val xtime_ref : width:int -> int64 -> int64

val gfmul_const :
  Ir.Builder.t -> width:int -> Ir.Builder.value -> int64 -> Ir.Builder.value
(** Multiply by a compile-time constant (xor of xtime powers). *)

val gfmul_const_ref : width:int -> int64 -> int64 -> int64
