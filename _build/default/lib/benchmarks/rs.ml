let mask ~width v =
  Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let poly_for ~width = mask ~width 0x1dL

(* Figure 1 kernel: symbol pre-scaling (u), a single-xor LFSR recurrence,
   and a conditional polynomial reduction on the way out. The recurrence
   (one xor) meets II = 1 under both delay models; the additive chain
   u -> B -> Bred -> D exceeds the clock period, which forces the
   traditional scheduler to pipeline — while a LUT mapping absorbs the
   whole kernel into a couple of bit-slice LUTs (the paper's "2 LUTs, one
   stage"). *)
let kernel ?(width = 8) () =
  let b = Ir.Builder.create () in
  let t = Ir.Builder.input b ~width "t" in
  let tshr = Ir.Builder.shr b t 1 in
  let u1 = Ir.Builder.xor_ b ~name:"u1" t tshr in
  let u1shl = Ir.Builder.shl b u1 1 in
  let u = Ir.Builder.xor_ b ~name:"u" u1 u1shl in
  let s = Ir.Builder.feedback b ~width ~init:0L ~dist:1 in
  let a = Ir.Builder.shl b ~name:"A" s 1 in
  let bx = Ir.Builder.xor_ b ~name:"B" u a in
  Ir.Builder.drive b ~cell:s bx;
  let msb = Ir.Builder.const b ~width (Int64.shift_left 1L (width - 1)) in
  let c = Ir.Builder.cmp b ~name:"C" Ir.Op.Ge bx msb in
  let red = Ir.Builder.const b ~width (poly_for ~width) in
  let reduced = Ir.Builder.xor_ b ~name:"Bred" bx red in
  let d = Ir.Builder.mux b ~name:"D" ~cond:c reduced bx in
  Ir.Builder.output b d;
  Ir.Builder.finish b

(* Returns (next_state, output). *)
let kernel_reference ~width ~t ~state =
  let t = mask ~width t in
  let u1 = Int64.logxor t (Int64.shift_right_logical t 1) in
  let u = Int64.logxor u1 (mask ~width (Int64.shift_left u1 1)) in
  let a = mask ~width (Int64.shift_left state 1) in
  let bv = Int64.logxor u a in
  let msb = Int64.shift_left 1L (width - 1) in
  let out =
    if Int64.unsigned_compare bv msb >= 0 then
      Int64.logxor bv (poly_for ~width)
    else bv
  in
  (bv, out)

(* Galois xtime: multiply by x modulo the field polynomial. *)
let xtime_ref ~width v =
  let shifted = mask ~width (Int64.shift_left v 1) in
  let msb = Int64.shift_left 1L (width - 1) in
  if Int64.equal (Int64.logand v msb) 0L then shifted
  else Int64.logxor shifted (poly_for ~width)

let gfmul_const_ref ~width x c =
  let rec go acc x c =
    if Int64.equal c 0L then acc
    else
      let acc =
        if Int64.equal (Int64.logand c 1L) 1L then Int64.logxor acc x else acc
      in
      go acc (xtime_ref ~width x) (Int64.shift_right_logical c 1)
  in
  go 0L (mask ~width x) c

(* Hardware xtime: shift, MSB probe, conditional reduction. *)
let xtime b ~width v =
  let shifted = Ir.Builder.shl b v 1 in
  let msb_const = Ir.Builder.const b ~width (Int64.shift_left 1L (width - 1)) in
  let has_msb = Ir.Builder.cmp b Ir.Op.Ge v msb_const in
  let red = Ir.Builder.const b ~width (poly_for ~width) in
  let reduced = Ir.Builder.xor_ b shifted red in
  Ir.Builder.mux b ~cond:has_msb reduced shifted

(* Multiply by a known constant: xor of the xtime powers at set bits. *)
let gfmul_const b ~width x c =
  let rec powers acc x c =
    if Int64.equal c 0L then List.rev acc
    else
      let acc =
        if Int64.equal (Int64.logand c 1L) 1L then x :: acc else acc
      in
      if Int64.equal (Int64.shift_right_logical c 1) 0L then List.rev acc
      else powers acc (xtime b ~width x) (Int64.shift_right_logical c 1)
  in
  match powers [] x c with
  | [] -> Ir.Builder.const b ~width 0L
  | terms -> Ir.Builder.reduce b (fun b x y -> Ir.Builder.xor_ b x y) terms

let default_taps_coeffs taps width =
  (* Fixed, arbitrary nonzero generator coefficients. Kept to one xtime
     step (values <= 3) so the encoder recurrence meets II = 1 under the
     additive delay model at the Table 1 clock target. *)
  let pattern = [| 2L; 3L; 1L; 3L |] in
  List.init taps (fun i -> mask ~width pattern.(i mod Array.length pattern))

(* Symbol whitening in front of the encoder (outside the recurrence): the
   part of the datapath a traditional scheduler is free to pipeline, and a
   mapping-aware one collapses into the first LUT level. *)
let whiten b ~width data =
  let d1 = Ir.Builder.xor_ b data (Ir.Builder.shr b data 1) in
  let d2 = Ir.Builder.xor_ b d1 (Ir.Builder.shl b d1 2) in
  Ir.Builder.xor_ b d2 (Ir.Builder.const b ~width (mask ~width 0x5L))

let whiten_ref ~width data =
  let d1 = Int64.logxor data (Int64.shift_right_logical data 1) in
  let d2 = Int64.logxor d1 (mask ~width (Int64.shift_left d1 2)) in
  Int64.logxor d2 (mask ~width 0x5L)

let full ?(width = 4) ?(taps = 4) () =
  let b = Ir.Builder.create () in
  let data0 = Ir.Builder.input b ~width "data" in
  let data = whiten b ~width data0 in
  let parity =
    List.init taps (fun i ->
        ignore i;
        Ir.Builder.feedback b ~width ~init:0L ~dist:1)
  in
  let last = List.nth parity (taps - 1) in
  let fb = Ir.Builder.xor_ b ~name:"fb" data last in
  let coeffs = default_taps_coeffs taps width in
  let zero = Ir.Builder.const b ~width 0L in
  let rec update prev cells cs =
    match (cells, cs) with
    | [], [] -> ()
    | cell :: cells, c :: cs ->
        let term = gfmul_const b ~width fb c in
        let next = Ir.Builder.xor_ b prev term in
        Ir.Builder.drive b ~cell next;
        if cells = [] then Ir.Builder.output b next;
        update cell cells cs
    | _, _ -> assert false
  in
  update zero parity coeffs;
  Ir.Builder.finish b

let full_reference ~width ~taps ~data =
  let coeffs = default_taps_coeffs taps width in
  let step parity d =
    let last = List.nth parity (taps - 1) in
    let fb = Int64.logxor (whiten_ref ~width (mask ~width d)) last in
    let terms = List.map (fun c -> gfmul_const_ref ~width fb c) coeffs in
    List.mapi
      (fun j term ->
        let prev = if j = 0 then 0L else List.nth parity (j - 1) in
        Int64.logxor prev term)
      terms
  in
  List.fold_left step (List.init taps (fun _ -> 0L)) data
