(** GSM application (Table 1, "Communication"): the saturating fixed-point
    accumulation at the heart of GSM full-rate LPC (the [GSM_ADD] /
    reflection-coefficient style chain) — a cascade of add/saturate
    stages against compile-time rails, with a black-box coefficient-table
    lookup feeding the chain. Saturation tests compare against constants,
    which the bit-level dependence tracker narrows to a handful of high
    bits (DESIGN.md). *)

val build : ?width:int -> ?stages:int -> unit -> Ir.Cdfg.t
(** Defaults: [width = 12], [stages = 3]. Inputs ["s"] (sample) and ["c"]
    (coefficient selector); output the saturated accumulation. *)

val coeff_table : width:int -> int64 array
(** The 16-entry coefficient ROM modelled by the black box. *)

val black_box_handler : width:int -> kind:string -> int64 array -> int64

val reference : width:int -> stages:int -> s:int64 -> c:int64 -> int64
