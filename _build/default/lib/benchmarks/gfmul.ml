let build ?(width = 4) () =
  let b = Ir.Builder.create () in
  let a0 = Ir.Builder.input b ~width "a" in
  let b0 = Ir.Builder.input b ~width "b" in
  let zero = Ir.Builder.const b ~width 0L in
  let rec steps i a acc =
    if i >= width then acc
    else begin
      (* acc ^= (b >> i)[0] ? a : 0 *)
      let bit = Ir.Builder.slice b b0 ~lo:i ~hi:i in
      let masked = Ir.Builder.mux b ~cond:bit a zero in
      let acc = Ir.Builder.xor_ b acc masked in
      let a' = if i = width - 1 then a else Rs.xtime b ~width a in
      steps (i + 1) a' acc
    end
  in
  let out = steps 0 a0 zero in
  Ir.Builder.output b out;
  Ir.Builder.finish b

let reference ~width ~a ~b =
  let a = Bench_util.mask ~width a and b = Bench_util.mask ~width b in
  let rec go i a acc =
    if i >= width then acc
    else
      let acc =
        if Int64.equal (Int64.logand (Int64.shift_right_logical b i) 1L) 1L
        then Int64.logxor acc a
        else acc
      in
      go (i + 1) (Rs.xtime_ref ~width a) acc
  in
  go 0 a 0L
