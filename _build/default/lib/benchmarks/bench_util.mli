(** Shared construction helpers for the benchmark CDFGs and their software
    reference models. *)

val mask : width:int -> int64 -> int64

(** {1 Hardware builders} *)

val eq_zero :
  Ir.Builder.t -> chunk:int -> Ir.Builder.value -> Ir.Builder.value
(** 1-bit "value == 0" test decomposed into [chunk]-bit slices whose
    equality tests are ANDed together — the bit-level decomposition a
    frontend applies so wide zero-tests become LUT-mappable (cf. the
    paper's reference [21]). *)

val mux_const :
  Ir.Builder.t -> width:int -> cond:Ir.Builder.value -> int64 -> int64 ->
  Ir.Builder.value
(** [mux_const b ~width ~cond if_true if_false] between two constants. *)

val xor_reduce : Ir.Builder.t -> Ir.Builder.value list -> Ir.Builder.value
(** Balanced xor tree. *)

val popcount :
  Ir.Builder.t -> Ir.Builder.value -> width:int -> Ir.Builder.value
(** SWAR popcount of a [width]-bit value (width must be a power of two,
    [<= 32]); result has the same width. *)

(** {1 Reference-model helpers} *)

val popcount_ref : width:int -> int64 -> int64
val eq_zero_ref : int64 -> int64
