(* Arc-tangent table entries, scaled to the word width; values are
   arbitrary but fixed and shared with the reference model. *)
let atan_entry ~width i =
  Bench_util.mask ~width
    (Int64.of_int (((0x32 lsr i) lor 1) land ((1 lsl width) - 1)))

let build ?(width = 8) ?(iterations = 4) () =
  if iterations < 1 then invalid_arg "Cordic.build: iterations < 1";
  let b = Ir.Builder.create () in
  let x0 = Ir.Builder.input b ~width "x0" in
  let y0 = Ir.Builder.input b ~width "y0" in
  let z0 = Ir.Builder.input b ~width "z0" in
  let rec rotate i x y z =
    if i >= iterations then (x, y, z)
    else begin
      (* d = sign(z): rotate clockwise when the residual angle is
         negative (MSB set). *)
      let d = Ir.Builder.slice b z ~lo:(width - 1) ~hi:(width - 1) in
      let xs = Ir.Builder.shr b x i in
      let ys = Ir.Builder.shr b y i in
      let x_add = Ir.Builder.add b x ys in
      let x_sub = Ir.Builder.sub b x ys in
      let y_add = Ir.Builder.add b y xs in
      let y_sub = Ir.Builder.sub b y xs in
      let atan = Ir.Builder.const b ~width (atan_entry ~width i) in
      let z_add = Ir.Builder.add b z atan in
      let z_sub = Ir.Builder.sub b z atan in
      let x' = Ir.Builder.mux b ~cond:d x_add x_sub in
      let y' = Ir.Builder.mux b ~cond:d y_sub y_add in
      let z' = Ir.Builder.mux b ~cond:d z_add z_sub in
      rotate (i + 1) x' y' z'
    end
  in
  let x, y, z = rotate 0 x0 y0 z0 in
  Ir.Builder.output b x;
  Ir.Builder.output b y;
  Ir.Builder.output b z;
  Ir.Builder.finish b

let reference ~width ~iterations ~x0 ~y0 ~z0 =
  let m = Bench_util.mask ~width in
  let msb = Int64.shift_left 1L (width - 1) in
  let rec rotate i x y z =
    if i >= iterations then (x, y, z)
    else
      let d = not (Int64.equal (Int64.logand z msb) 0L) in
      let xs = Int64.shift_right_logical x i in
      let ys = Int64.shift_right_logical y i in
      let atan = atan_entry ~width i in
      let x' = if d then m (Int64.add x ys) else m (Int64.sub x ys) in
      let y' = if d then m (Int64.sub y xs) else m (Int64.add y xs) in
      let z' = if d then m (Int64.add z atan) else m (Int64.sub z atan) in
      rotate (i + 1) x' y' z'
  in
  rotate 0 (m x0) (m y0) (m z0)
