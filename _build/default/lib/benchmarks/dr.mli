(** DR application (Table 1, "Machine Learning"): digit recognition by
    nearest-neighbour matching — the streamed pattern is xored against
    stored template constants, Hamming distances come from SWAR popcounts,
    and a comparator/mux tree tracks the index of the closest template.
    The paper uses 49-pixel digits and a large template store; this is the
    same datapath at reduced pattern width and template count
    (DESIGN.md). *)

val templates : width:int -> count:int -> int64 list
(** The fixed template patterns. *)

val build : ?width:int -> ?count:int -> unit -> Ir.Cdfg.t
(** Defaults: [width = 8] pixels, [count = 2] templates. Input ["p"];
    output the index of the nearest template. *)

val reference : width:int -> count:int -> p:int64 -> int64
