(* Whitening mix: alternating right/left shifted self-xors, then a
   constant fold — all bitwise, so the mapper can pack several per LUT. *)
let mix_shifts = [| 1; 2; 3; 1; 2 |]

let mix_one b ~width ~mix_depth v =
  let rec go i v =
    if i >= mix_depth then v
    else
      let s = mix_shifts.(i mod Array.length mix_shifts) in
      let shifted =
        if i mod 2 = 0 then Ir.Builder.shr b v s else Ir.Builder.shl b v s
      in
      go (i + 1) (Ir.Builder.xor_ b v shifted)
  in
  let mixed = go 0 v in
  let c = Ir.Builder.const b ~width (Bench_util.mask ~width 0x5aL) in
  Ir.Builder.xor_ b mixed c

let mix_one_ref ~width ~mix_depth v =
  let v = Bench_util.mask ~width v in
  let rec go i v =
    if i >= mix_depth then v
    else
      let s = mix_shifts.(i mod Array.length mix_shifts) in
      let shifted =
        if i mod 2 = 0 then Int64.shift_right_logical v s
        else Bench_util.mask ~width (Int64.shift_left v s)
      in
      go (i + 1) (Int64.logxor v shifted)
  in
  Int64.logxor (go 0 v) (Bench_util.mask ~width 0x5aL)

let build ?(elements = 8) ?(width = 8) ?(mix_depth = 3) () =
  if elements < 2 then invalid_arg "Xorr.build: need >= 2 elements";
  let b = Ir.Builder.create () in
  let inputs =
    List.init elements (fun i ->
        Ir.Builder.input b ~width (Printf.sprintf "a%d" i))
  in
  let mixed = List.map (mix_one b ~width ~mix_depth) inputs in
  let out = Bench_util.xor_reduce b mixed in
  Ir.Builder.output b out;
  Ir.Builder.finish b

let reference ~elements ~width ~mix_depth data =
  if List.length data <> elements then
    invalid_arg "Xorr.reference: element count mismatch";
  List.fold_left
    (fun acc v -> Int64.logxor acc (mix_one_ref ~width ~mix_depth v))
    0L data
