(** AES application (Table 1, "Cryptography"): one round on a 4-byte
    column — S-box substitutions through black-box block-RAM lookups,
    MixColumns xtime/xor network in GF(2^8), and AddRoundKey. The paper
    pipelines the full AES; this is one round at full byte width with the
    S-boxes as the memory-bound black boxes the paper calls out
    (DESIGN.md). *)

val sbox : int -> int
(** The AES S-box (the real one), exposed for the evaluator and tests. *)

val black_box_handler : kind:string -> int64 array -> int64
(** Evaluation handler implementing the ["sbox"] black-box kind. *)

val build : unit -> Ir.Cdfg.t
(** Inputs [a0..a3] (column bytes) and [k0..k3] (round key bytes); outputs
    the transformed column. Four black-box S-box reads on the
    ["bram_port"] resource class. *)

val reference : a:int array -> k:int array -> int array
(** [a] and [k] are 4 bytes each. *)
