let count_width width =
  (* enough bits to represent [width] itself *)
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go width 0

let build ?(width = 16) () =
  if width < 4 || width land (width - 1) <> 0 then
    invalid_arg "Clz.build: width must be a power of two >= 4";
  let cw = count_width width in
  let b = Ir.Builder.create () in
  let x0 = Ir.Builder.input b ~width "x" in
  let rec stages k x n =
    if k = 0 then (x, n)
    else begin
      let hi = Ir.Builder.slice b x ~lo:(width - k) ~hi:(width - 1) in
      let z = Bench_util.eq_zero b ~chunk:4 hi in
      let inc =
        Bench_util.mux_const b ~width:cw ~cond:z (Int64.of_int k) 0L
      in
      let n' =
        match n with
        | None -> Some inc
        | Some n -> Some (Ir.Builder.add b n inc)
      in
      let shifted = Ir.Builder.shl b x k in
      let x' = Ir.Builder.mux b ~cond:z shifted x in
      stages (k / 2) x' n'
    end
  in
  let _, n = stages (width / 2) x0 None in
  let n = match n with Some n -> n | None -> assert false in
  (* all-zero input: one more leading zero than the halvings counted *)
  let zall = Bench_util.eq_zero b ~chunk:4 x0 in
  let last = Bench_util.mux_const b ~width:cw ~cond:zall 1L 0L in
  let total = Ir.Builder.add b ~name:"clz" n last in
  Ir.Builder.output b total;
  Ir.Builder.finish b

let reference ~width v =
  let v = Bench_util.mask ~width v in
  let rec stages k x n =
    if k = 0 then (x, n)
    else
      let hi = Int64.shift_right_logical x (width - k) in
      if Int64.equal hi 0L then
        stages (k / 2) (Bench_util.mask ~width (Int64.shift_left x k)) (n + k)
      else stages (k / 2) x n
  in
  let _, n = stages (width / 2) v 0 in
  let n = if Int64.equal v 0L then n + 1 else n in
  Int64.of_int n
