(** CLZ kernel (Table 1): count the leading zeros of a word with a
    branchless binary search — successive halvings test whether the upper
    half is zero, conditionally shift the value up, and accumulate the
    count. Zero-tests are decomposed into LUT-sized chunks
    ({!Bench_util.eq_zero}). The paper uses a 64-bit value; the default
    here is 16 bits so the MILP stays laptop-scale (DESIGN.md). *)

val build : ?width:int -> unit -> Ir.Cdfg.t
(** [width] must be a power of two, [>= 4]. Output is the leading-zero
    count, [width] when the input is 0. *)

val reference : width:int -> int64 -> int64
