(** MT application (Table 1, "Scientific Computing"): a Mersenne-Twister
    style pseudorandom generator — a loop-carried linear state update
    (upper/lower masking, matrix conditional xor) followed by the familiar
    shift/mask tempering chain. Scaled to one state word with fresh
    entropy streamed in, per DESIGN.md. *)

val build : ?width:int -> unit -> Ir.Cdfg.t
(** Default [width = 16]. Input ["x"] (entropy); output the tempered
    word. *)

val reference : width:int -> state:int64 -> x:int64 -> int64 * int64
(** [(next_state, tempered_output)] for one iteration. *)
