(** The Table 1 benchmark suite: one entry per row, with the workload
    class, scaled-down construction parameters (DESIGN.md), the device
    settings each class uses, and an evaluation-time black-box handler. *)

type kind = Kernel | Application

type entry = {
  name : string;  (** Table 1 designation (CLZ, XORR, ...) *)
  kind : kind;
  domain : string;
  description : string;
  build : unit -> Ir.Cdfg.t;
  black_box : (kind:string -> int64 array -> int64) option;
  resources : Fpga.Resource.budget;
  t_clk : float;
      (** target clock period: kernels target a faster clock than
          applications so the additive-model pessimism shows at the scaled
          problem sizes (DESIGN.md substitution #4) *)
}

val all : entry list
(** The 9 Table 1 rows, paper order: CLZ, XORR, GFMUL, CORDIC, MT, AES,
    RS, DR, GSM. *)

val find : string -> entry
(** Case-insensitive lookup. @raise Not_found. *)

val kind_name : kind -> string
