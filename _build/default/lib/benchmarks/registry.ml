type kind = Kernel | Application

type entry = {
  name : string;
  kind : kind;
  domain : string;
  description : string;
  build : unit -> Ir.Cdfg.t;
  black_box : (kind:string -> int64 array -> int64) option;
  resources : Fpga.Resource.budget;
  t_clk : float;
}

let kernel_clk = 5.0
let app_clk = 10.0

let all =
  [
    {
      name = "CLZ";
      kind = Kernel;
      domain = "Kernel";
      description = "Count the number of leading zeros in a 16-bit value";
      build = (fun () -> Clz.build ~width:16 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = kernel_clk;
    };
    {
      name = "XORR";
      kind = Kernel;
      domain = "Kernel";
      description = "XOR reduction for an array of whitened elements";
      build = (fun () -> Xorr.build ~elements:8 ~width:8 ~mix_depth:3 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = kernel_clk;
    };
    {
      name = "GFMUL";
      kind = Kernel;
      domain = "Kernel";
      description = "Efficient Galois field multiplication, GF(2^4)";
      build = (fun () -> Gfmul.build ~width:4 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = kernel_clk;
    };
    {
      name = "CORDIC";
      kind = Application;
      domain = "Scientific Computing";
      description = "Coordinate Rotation Digital Computer, 4 rotations";
      build = (fun () -> Cordic.build ~width:8 ~iterations:4 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = app_clk;
    };
    {
      name = "MT";
      kind = Application;
      domain = "Scientific Computing";
      description = "Mersenne Twister pseudorandom number generation";
      build = (fun () -> Mt.build ~width:16 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = app_clk;
    };
    {
      name = "AES";
      kind = Application;
      domain = "Cryptography";
      description = "Advanced Encryption Standard round (column)";
      build = (fun () -> Aes.build ());
      black_box = Some Aes.black_box_handler;
      resources = Fpga.Resource.of_list [ ("bram_port", 4) ];
      t_clk = app_clk;
    };
    {
      name = "RS";
      kind = Application;
      domain = "Communication";
      description = "Reed-Solomon encoder, 4 parity taps over GF(2^4)";
      build = (fun () -> Rs.full ~width:4 ~taps:4 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = app_clk;
    };
    {
      name = "DR";
      kind = Application;
      domain = "Machine Learning";
      description = "Digit recognition using nearest-neighbour matching";
      build = (fun () -> Dr.build ~width:8 ~count:2 ());
      black_box = None;
      resources = Fpga.Resource.unlimited;
      t_clk = app_clk;
    };
    {
      name = "GSM";
      kind = Application;
      domain = "Communication";
      description = "GSM full-rate saturating LPC accumulation";
      build = (fun () -> Gsm.build ~width:12 ~stages:3 ());
      black_box = Some (Gsm.black_box_handler ~width:12);
      resources = Fpga.Resource.of_list [ ("bram_port", 2) ];
      t_clk = app_clk;
    };
  ]

let find name =
  let up = String.uppercase_ascii name in
  match List.find_opt (fun e -> String.uppercase_ascii e.name = up) all with
  | Some e -> e
  | None -> raise Not_found

let kind_name = function Kernel -> "Kernel" | Application -> "Application"
