(** XORR kernel (Table 1): XOR reduction over an array of elements, each
    first passed through a short xor/shift whitening mix (the paper's
    version reduces a 512-element array into a depth-9 tree; this one is
    scaled down per DESIGN.md, with the mix standing in for the extra tree
    depth so the additive schedule still has to pipeline). *)

val build : ?elements:int -> ?width:int -> ?mix_depth:int -> unit -> Ir.Cdfg.t
(** Defaults: [elements = 8], [width = 8], [mix_depth = 3]. *)

val reference :
  elements:int -> width:int -> mix_depth:int -> int64 list -> int64
(** Software model over one iteration's [elements] inputs. *)
