(** Register-transfer-level netlists: the explicit structure behind the
    emitted Verilog, plus a cycle-accurate simulator.

    A netlist has input ports, combinational wires (in dependency order),
    black-box instances, pipeline registers (with FPGA-style initial
    values), and output ports. {!of_design} builds one from a verified
    (CDFG, cover, schedule) triple; {!simulate} clocks it — which is how
    the test suite proves that pipelining preserved the kernel's
    semantics, register placement included. *)

type signal = { name : string; width : int }

type expr =
  | Ref of signal
  | Lit of { width : int; value : int64 }
  | App of Ir.Op.t * expr list * int  (** op, operands, result width *)

type instance = {
  kind : string;  (** black-box module name *)
  args : expr list;
  out : signal;
}

type reg = { q : signal; d : expr; init : int64 }

type t = {
  module_name : string;
  inputs : signal list;
  wires : (signal * [ `Expr of expr | `Instance of instance ]) list;
      (** dependency order *)
  regs : reg list;
  outputs : (signal * expr) list;
}

val of_design :
  ?module_name:string ->
  Ir.Cdfg.t ->
  Sched.Cover.t ->
  Sched.Schedule.t ->
  t
(** @raise Invalid_argument if the cover fails {!Sched.Cover.validate}. *)

val register_bits : t -> int
val lut_expressions : t -> int
(** Combinational [`Expr] wires, excluding plain input aliases. *)

type sim_result = {
  cycles : int;
  outputs : (string * int64 array) list;
      (** per output port, one value per cycle *)
}

val simulate :
  ?black_box:(kind:string -> int64 array -> int64) ->
  t ->
  cycles:int ->
  inputs:(cycle:int -> name:string -> int64) ->
  sim_result
(** Clock the netlist [cycles] times. Combinational wires settle within
    the cycle (they are stored in dependency order); registers update at
    the cycle boundary. *)
