type signal = { name : string; width : int }

type expr =
  | Ref of signal
  | Lit of { width : int; value : int64 }
  | App of Ir.Op.t * expr list * int

type instance = { kind : string; args : expr list; out : signal }
type reg = { q : signal; d : expr; init : int64 }

type t = {
  module_name : string;
  inputs : signal list;
  wires : (signal * [ `Expr of expr | `Instance of instance ]) list;
  regs : reg list;
  outputs : (signal * expr) list;
}

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    s

let of_design ?(module_name = "pipeline") g cover (sched : Sched.Schedule.t) =
  (match Sched.Cover.validate g cover with
  | Ok () -> ()
  | Error e -> invalid_arg ("Netlist.of_design: invalid cover: " ^ e));
  let n = Ir.Cdfg.num_nodes g in
  let base v = Printf.sprintf "n%d_%s" v (sanitize (Ir.Cdfg.node_name g v)) in
  let width = Ir.Cdfg.width g in
  let is_const v =
    match Ir.Cdfg.op g v with Ir.Op.Const _ -> true | _ -> false
  in
  (* Register stages per root (lifetime), and the reset value carried by
     loop-carried edges out of the root. *)
  let stages = Array.make n 0 in
  let init_of = Array.make n 0L in
  Array.iteri
    (fun v c ->
      match c with
      | None -> ()
      | Some (cut : Cuts.cut) ->
          Bitdep.Int_set.iter
            (fun w ->
              Array.iter
                (fun (e : Ir.Cdfg.edge) ->
                  if
                    (not (is_const e.src))
                    && (e.dist > 0
                       || not (Bitdep.Int_set.mem e.src cut.Cuts.cone))
                  then begin
                    let delay =
                      sched.cycle.(v) + (sched.ii * e.dist)
                      - sched.cycle.(e.src)
                    in
                    if delay > stages.(e.src) then stages.(e.src) <- delay;
                    if e.dist > 0 then init_of.(e.src) <- e.init
                  end)
                (Ir.Cdfg.preds g w))
            cut.Cuts.cone)
    cover.Sched.Cover.chosen;
  let sig_of v ~delay =
    if delay <= 0 then { name = base v ^ "_c"; width = width v }
    else { name = Printf.sprintf "%s_d%d" (base v) delay; width = width v }
  in
  let ref_value u ~delay =
    match Ir.Cdfg.op g u with
    | Ir.Op.Const c -> Lit { width = width u; value = c }
    | _ -> Ref (sig_of u ~delay)
  in
  let rec expr_of cone root_cycle w =
    let nd = Ir.Cdfg.node g w in
    let operand i =
      let e = nd.preds.(i) in
      if e.Ir.Cdfg.dist > 0 || not (Bitdep.Int_set.mem e.src cone) then
        let delay =
          root_cycle + (sched.ii * e.Ir.Cdfg.dist) - sched.cycle.(e.src)
        in
        ref_value e.src ~delay
      else expr_of cone root_cycle e.src
    in
    match nd.op with
    | Ir.Op.Input _ | Ir.Op.Black_box _ -> ref_value w ~delay:0
    | Ir.Op.Const c -> Lit { width = nd.width; value = c }
    | op ->
        let arity = Option.value (Ir.Op.arity op) ~default:0 in
        App (op, List.init arity operand, nd.width)
  in
  let wires = ref [] and regs = ref [] in
  List.iter
    (fun v ->
      match Sched.Cover.chosen cover v with
      | None -> ()
      | Some (cut : Cuts.cut) ->
          (match Ir.Cdfg.op g v with
          | Ir.Op.Const _ -> () (* hardwired; no signal *)
          | Ir.Op.Input _ ->
              wires :=
                ( sig_of v ~delay:0,
                  `Expr
                    (Ref
                       {
                         name = sanitize (Ir.Cdfg.node_name g v);
                         width = width v;
                       }) )
                :: !wires
          | Ir.Op.Black_box { kind; _ } ->
              let args =
                Array.to_list
                  (Array.map
                     (fun (e : Ir.Cdfg.edge) ->
                       let delay =
                         sched.cycle.(v) + (sched.ii * e.dist)
                         - sched.cycle.(e.src)
                       in
                       ref_value e.src ~delay)
                     (Ir.Cdfg.preds g v))
              in
              wires :=
                ( sig_of v ~delay:0,
                  `Instance
                    { kind = sanitize kind; args; out = sig_of v ~delay:0 } )
                :: !wires
          | _ ->
              wires :=
                (sig_of v ~delay:0, `Expr (expr_of cut.Cuts.cone sched.cycle.(v) v))
                :: !wires);
          for d = 1 to stages.(v) do
            regs :=
              {
                q = sig_of v ~delay:d;
                d = ref_value v ~delay:(d - 1);
                init = init_of.(v);
              }
              :: !regs
          done)
    (Ir.Cdfg.topo_order g);
  let inputs =
    List.map
      (fun v -> { name = sanitize (Ir.Cdfg.node_name g v); width = width v })
      (Ir.Cdfg.inputs g)
  in
  let outputs =
    List.mapi
      (fun i v ->
        ( {
            name = Printf.sprintf "out%d_%s" i (sanitize (Ir.Cdfg.node_name g v));
            width = width v;
          },
          ref_value v ~delay:0 ))
      (Ir.Cdfg.outputs g)
  in
  {
    module_name;
    inputs;
    wires = List.rev !wires;
    regs = List.rev !regs;
    outputs;
  }

let register_bits t =
  List.fold_left (fun acc r -> acc + r.q.width) 0 t.regs

let lut_expressions t =
  List.fold_left
    (fun acc (_, w) ->
      match w with
      | `Expr (App _) -> acc + 1
      | `Expr (Ref _ | Lit _) | `Instance _ -> acc)
    0 t.wires

type sim_result = { cycles : int; outputs : (string * int64 array) list }

let mask ~width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let no_black_box ~kind _ =
  invalid_arg ("Netlist.simulate: no handler for black box kind " ^ kind)

let simulate ?(black_box = no_black_box) t ~cycles ~inputs =
  let env : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace env r.q.name (mask ~width:r.q.width r.init)) t.regs;
  let rec eval = function
    | Lit { width; value } -> mask ~width value
    | Ref s -> (
        match Hashtbl.find_opt env s.name with
        | Some v -> v
        | None -> 0L (* uninitialized wire before first drive *))
    | App (op, args, width) -> (
        let vals = Array.of_list (List.map eval args) in
        match op with
        | Ir.Op.Concat ->
            (* low operand width = total - high width *)
            let high_w =
              match args with
              | [ h; _ ] -> (
                  match h with
                  | Ref s -> s.width
                  | Lit { width; _ } -> width
                  | App (_, _, w) -> w)
              | _ -> invalid_arg "Netlist.simulate: concat arity"
            in
            let low_w = width - high_w in
            mask ~width
              (Int64.logor (Int64.shift_left vals.(0) low_w) vals.(1))
        | _ -> Ir.Op.eval op ~width ~black_box:(fun ~kind _ -> black_box ~kind [||]) vals)
  in
  let out_arrays =
    List.map (fun (s, _) -> (s.name, Array.make cycles 0L)) t.outputs
  in
  for cycle = 0 to cycles - 1 do
    (* input ports *)
    List.iter
      (fun s ->
        Hashtbl.replace env s.name
          (mask ~width:s.width (inputs ~cycle ~name:s.name)))
      t.inputs;
    (* combinational settle, in dependency order *)
    List.iter
      (fun (s, w) ->
        let v =
          match w with
          | `Expr e -> eval e
          | `Instance { kind; args; _ } ->
              black_box ~kind (Array.of_list (List.map eval args))
        in
        Hashtbl.replace env s.name (mask ~width:s.width v))
      t.wires;
    (* sample outputs *)
    List.iter2
      (fun (_, e) (_, arr) -> arr.(cycle) <- eval e)
      t.outputs out_arrays;
    (* clock edge: all registers update simultaneously *)
    let next = List.map (fun r -> (r.q, eval r.d)) t.regs in
    List.iter
      (fun ((q : signal), v) -> Hashtbl.replace env q.name (mask ~width:q.width v))
      next
  done;
  { cycles; outputs = out_arrays }
