lib/rtl/netlist.mli: Ir Sched
