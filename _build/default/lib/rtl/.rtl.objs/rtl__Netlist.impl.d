lib/rtl/netlist.ml: Array Bitdep Cuts Hashtbl Int64 Ir List Option Printf Sched String
