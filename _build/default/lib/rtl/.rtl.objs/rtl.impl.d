lib/rtl/rtl.ml: Buffer Fun Int64 Ir List Netlist Printf Sched
