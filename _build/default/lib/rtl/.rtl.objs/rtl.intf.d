lib/rtl/rtl.mli: Ir Netlist Sched
