(** Verilog emission: turn a verified (schedule, cover) pair into a
    pipelined RTL module — the backend half of the HLS flow the paper
    modifies. One wire per cover root, one register stage per cycle of a
    value's lifetime, cone logic inlined as combinational expressions,
    black boxes instantiated as external modules.

    The emitted text is structural Verilog-2001; tests check its shape and
    that its register count matches {!Sched.Qor}'s FF model exactly. *)

type t = {
  module_name : string;
  source : string;  (** the Verilog text *)
  register_bits : int;  (** total flip-flop bits emitted *)
  lut_expressions : int;  (** combinational assigns emitted *)
}

val emit :
  ?module_name:string ->
  Ir.Cdfg.t ->
  Sched.Cover.t ->
  Sched.Schedule.t ->
  t
(** @raise Invalid_argument if the cover fails {!Sched.Cover.validate}. *)

val write_file : path:string -> t -> unit

module Netlist = Netlist
(** The netlist IR and cycle-accurate simulator behind the emitter. *)
