type align = Left | Right
type column = { title : string; align : align }

let table ~columns rows =
  let ncols = List.length columns in
  List.iter
    (fun r ->
      if List.length r <> ncols then invalid_arg "Report.table: ragged row")
    rows;
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length c.title) rows)
      columns
  in
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        let c = List.nth columns i in
        let w = List.nth widths i in
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad c.align w cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (List.map (fun c -> c.title) columns);
  let rule = List.fold_left (fun acc w -> acc + w + 2) (-2) widths in
  Buffer.add_string buf (String.make rule '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let pct ~reference value =
  if reference <= 0 then ""
  else
    let delta = 100.0 *. float_of_int (value - reference) /. float_of_int reference in
    Printf.sprintf "(%+.1f%%)" delta

let f2 v = Printf.sprintf "%.2f" v
