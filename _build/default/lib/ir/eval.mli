(** Bit-accurate functional simulation of a CDFG over multiple loop
    iterations.

    This is the reference executor used to check that benchmark CDFGs
    compute the same function as their software models, and that emitted
    schedules preserve semantics (a schedule never changes dataflow, but the
    tests use the simulator to validate graph constructions). *)

type trace = int64 array array
(** [trace.(iter).(node)] = value of [node] at iteration [iter], masked to
    the node's width. *)

val run :
  ?black_box:(kind:string -> int64 array -> int64) ->
  Cdfg.t ->
  iterations:int ->
  inputs:(iter:int -> name:string -> int64) ->
  trace
(** Simulates [iterations] loop iterations. Loop-carried operands read the
    producing node's value [dist] iterations earlier, or the edge's [init]
    value for iterations before the recurrence warmed up. The default
    [black_box] raises [Invalid_argument].
    @raise Invalid_argument if [iterations < 0]. *)

val outputs_of : Cdfg.t -> trace -> iter:int -> (string * int64) list
(** Primary-output values at one iteration, labelled by node name. *)
