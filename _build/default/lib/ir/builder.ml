type value = Node of int | Cell of int

type proto = {
  p_op : Op.t;
  p_width : int;
  p_preds : value array;
  p_name : string option;
}

type cell = {
  c_width : int;
  c_init : int64;
  c_dist : int;
  mutable c_driver : int option;
}

type t = {
  mutable nodes : proto list;  (* reversed *)
  mutable n_nodes : int;
  mutable cells : cell list;  (* reversed *)
  mutable n_cells : int;
  mutable outs : int list;  (* reversed *)
}

let create () = { nodes = []; n_nodes = 0; cells = []; n_cells = 0; outs = [] }

let cell_info b i = List.nth b.cells (b.n_cells - 1 - i)

let width_of b = function
  | Node i -> (List.nth b.nodes (b.n_nodes - 1 - i)).p_width
  | Cell i -> (cell_info b i).c_width

let add_node b ?name ~op ~width preds =
  let id = b.n_nodes in
  b.nodes <- { p_op = op; p_width = width; p_preds = Array.of_list preds;
               p_name = name } :: b.nodes;
  b.n_nodes <- id + 1;
  Node id

let node b ?name ~op ~width preds = add_node b ?name ~op ~width preds

let infer b ?name op preds =
  let operand_widths = List.map (width_of b) preds in
  let width = Op.result_width op ~operand_widths in
  add_node b ?name ~op ~width preds

let input b ?name ~width nm =
  add_node b ?name:(Some (Option.value name ~default:nm))
    ~op:(Op.Input nm) ~width []

let const b ~width v =
  if width < 64 && Int64.unsigned_compare v (Int64.shift_left 1L width) >= 0
  then invalid_arg "Builder.const: value does not fit width";
  add_node b ~op:(Op.Const v) ~width []

let feedback b ~width ~init ~dist =
  if dist < 1 then invalid_arg "Builder.feedback: dist < 1";
  let id = b.n_cells in
  b.cells <- { c_width = width; c_init = init; c_dist = dist; c_driver = None }
             :: b.cells;
  b.n_cells <- id + 1;
  Cell id

let drive b ~cell v =
  match (cell, v) with
  | Cell i, Node j ->
      let c = cell_info b i in
      if c.c_driver <> None then invalid_arg "Builder.drive: already driven";
      if width_of b v <> c.c_width then
        invalid_arg "Builder.drive: width mismatch";
      c.c_driver <- Some j
  | Cell _, Cell _ -> invalid_arg "Builder.drive: driver must be a node"
  | Node _, _ -> invalid_arg "Builder.drive: not a feedback cell"

let not_ b ?name v = infer b ?name Op.Not [ v ]
let and_ b ?name x y = infer b ?name (Op.Bitwise Op.And) [ x; y ]
let or_ b ?name x y = infer b ?name (Op.Bitwise Op.Or) [ x; y ]
let xor_ b ?name x y = infer b ?name (Op.Bitwise Op.Xor) [ x; y ]
let shl b ?name v s = infer b ?name (Op.Shl s) [ v ]
let shr b ?name v s = infer b ?name (Op.Shr s) [ v ]
let slice b ?name v ~lo ~hi = infer b ?name (Op.Slice { lo; hi }) [ v ]
let concat b ?name high low = infer b ?name Op.Concat [ high; low ]
let add b ?name x y = infer b ?name Op.Add [ x; y ]
let sub b ?name x y = infer b ?name Op.Sub [ x; y ]
let cmp b ?name c x y = infer b ?name (Op.Cmp c) [ x; y ]
let mux b ?name ~cond x y = infer b ?name Op.Mux [ cond; x; y ]

let black_box b ?name ~kind ~resource ~width preds =
  add_node b ?name ~op:(Op.Black_box { kind; resource }) ~width preds

let rec reduce b ?name f = function
  | [] -> invalid_arg "Builder.reduce: empty"
  | [ v ] -> v
  | vs ->
      let rec pair = function
        | x :: y :: rest -> f b x y :: pair rest
        | ([ _ ] | []) as rest -> rest
      in
      reduce b ?name f (pair vs)

let output b v =
  match v with
  | Node i -> b.outs <- i :: b.outs
  | Cell _ -> invalid_arg "Builder.output: cannot output a feedback cell"

let finish b =
  let cells = Array.of_list (List.rev b.cells) in
  let resolve = function
    | Node i -> Cdfg.{ src = i; dist = 0; init = 0L }
    | Cell i -> (
        let c = cells.(i) in
        match c.c_driver with
        | None -> invalid_arg "Builder.finish: undriven feedback cell"
        | Some j -> Cdfg.{ src = j; dist = c.c_dist; init = c.c_init })
  in
  let protos = List.rev b.nodes in
  let nodes =
    List.mapi
      (fun id p ->
        Cdfg.{ id; op = p.p_op; width = p.p_width;
               preds = Array.map resolve p.p_preds; name = p.p_name })
      protos
  in
  Cdfg.create ~nodes ~outputs:(List.rev b.outs)
