lib/ir/dot.mli: Cdfg
