lib/ir/cdfg.mli: Fmt Op
