lib/ir/op.mli: Fmt Fpga
