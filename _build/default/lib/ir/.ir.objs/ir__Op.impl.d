lib/ir/op.ml: Array Fmt Fpga Int64 List Printf String
