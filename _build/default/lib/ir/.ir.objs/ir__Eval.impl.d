lib/ir/eval.ml: Array Cdfg Int64 List Op
