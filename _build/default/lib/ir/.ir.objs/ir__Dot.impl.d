lib/ir/dot.ml: Array Buffer Cdfg Fun Hashtbl List Op Option Printf
