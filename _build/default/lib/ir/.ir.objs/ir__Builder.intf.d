lib/ir/builder.mli: Cdfg Op
