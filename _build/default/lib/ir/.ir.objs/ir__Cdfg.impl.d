lib/ir/cdfg.ml: Array Fmt Hashtbl List Op Printf Queue Result Seq
