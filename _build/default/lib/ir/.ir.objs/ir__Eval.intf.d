lib/ir/eval.mli: Cdfg
