lib/ir/builder.ml: Array Cdfg Int64 List Op Option
