(** Graphviz export of CDFGs, optionally annotated with a schedule
    (cycle numbers as clusters) for debugging and documentation. *)

val to_string : ?cycle_of:(int -> int) -> Cdfg.t -> string
(** DOT source. With [cycle_of], nodes are grouped into one cluster per
    clock cycle so register boundaries are visible. Loop-carried edges are
    drawn dashed and labelled with their distance. *)

val write_file : ?cycle_of:(int -> int) -> path:string -> Cdfg.t -> unit
