type bitwise = And | Or | Xor
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Input of string
  | Const of int64
  | Not
  | Bitwise of bitwise
  | Shl of int
  | Shr of int
  | Slice of { lo : int; hi : int }
  | Concat
  | Add
  | Sub
  | Cmp of cmp
  | Mux
  | Black_box of { kind : string; resource : string }

let arity = function
  | Input _ | Const _ -> Some 0
  | Not | Shl _ | Shr _ | Slice _ -> Some 1
  | Bitwise _ | Concat | Add | Sub | Cmp _ -> Some 2
  | Mux -> Some 3
  | Black_box _ -> None

let classify = function
  | Input _ | Const _ | Shl _ | Shr _ | Slice _ | Concat -> Fpga.Op_class.Wire
  | Not | Bitwise _ | Mux -> Fpga.Op_class.Logic
  | Add | Sub | Cmp _ -> Fpga.Op_class.Arith
  | Black_box { resource; _ } -> Fpga.Op_class.Black_box resource

let validate_widths op ~operand_widths =
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let arity_ok =
    match arity op with
    | Some n when n <> List.length operand_widths ->
        fail "arity mismatch: expected %d operands, got %d" n
          (List.length operand_widths)
    | Some _ | None -> Ok ()
  in
  match arity_ok with
  | Error _ as e -> e
  | Ok () -> (
      match (op, operand_widths) with
      | (Input _ | Const _), [] -> Ok ()
      | (Not | Shl _ | Shr _), [ w ] when w > 0 -> Ok ()
      | Slice { lo; hi }, [ w ] ->
          if lo < 0 || hi < lo then fail "bad slice bounds [%d:%d]" hi lo
          else if hi >= w then fail "slice [%d:%d] exceeds width %d" hi lo w
          else Ok ()
      | (Bitwise _ | Add | Sub | Cmp _), [ w1; w2 ] ->
          if w1 <> w2 then fail "operand widths differ: %d vs %d" w1 w2
          else if w1 <= 0 then fail "non-positive width"
          else Ok ()
      | Concat, [ w1; w2 ] ->
          if w1 <= 0 || w2 <= 0 then fail "non-positive width" else Ok ()
      | Mux, [ wc; w1; w2 ] ->
          if wc <> 1 then fail "mux condition must be 1 bit, got %d" wc
          else if w1 <> w2 then fail "mux arm widths differ: %d vs %d" w1 w2
          else Ok ()
      | Black_box _, ws ->
          if List.exists (fun w -> w <= 0) ws then fail "non-positive width"
          else Ok ()
      | (Input _ | Const _ | Not | Shl _ | Shr _ | Slice _), _ ->
          fail "arity mismatch"
      | (Bitwise _ | Add | Sub | Cmp _ | Concat | Mux), _ ->
          fail "arity mismatch")

let result_width op ~operand_widths =
  (match validate_widths op ~operand_widths with
  | Error msg -> invalid_arg ("Op.result_width: " ^ msg)
  | Ok () -> ());
  match (op, operand_widths) with
  | (Not | Shl _ | Shr _), [ w ] -> w
  | Slice { lo; hi }, [ _ ] -> hi - lo + 1
  | (Bitwise _ | Add | Sub), w :: _ -> w
  | Cmp _, _ -> 1
  | Concat, [ w1; w2 ] -> w1 + w2
  | Mux, [ _; w; _ ] -> w
  | (Input _ | Const _ | Black_box _ | Not | Shl _ | Shr _ | Slice _), _ ->
      invalid_arg "Op.result_width: width must be given explicitly"
  | (Bitwise _ | Add | Sub | Concat | Mux), _ -> assert false

let mask ~width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let bool_to_i64 b = if b then 1L else 0L

let eval op ~width ~black_box operands =
  let nth i =
    if i < Array.length operands then operands.(i)
    else invalid_arg "Op.eval: arity mismatch"
  in
  let v =
    match op with
    | Input name -> invalid_arg ("Op.eval: unresolved input " ^ name)
    | Const c -> c
    | Not -> Int64.lognot (nth 0)
    | Bitwise And -> Int64.logand (nth 0) (nth 1)
    | Bitwise Or -> Int64.logor (nth 0) (nth 1)
    | Bitwise Xor -> Int64.logxor (nth 0) (nth 1)
    | Shl s -> if s >= 64 then 0L else Int64.shift_left (nth 0) s
    | Shr s -> if s >= 64 then 0L else Int64.shift_right_logical (nth 0) s
    | Slice { lo; hi = _ } -> Int64.shift_right_logical (nth 0) lo
    | Concat ->
        (* operands are [high; low]; low width = width - high width is not
           recoverable here, so the simulator pre-shifts: we instead receive
           the low operand width via the mask of operand 1 being exact. The
           simulator calls a dedicated path for Concat. *)
        invalid_arg "Op.eval: Concat is evaluated by the simulator"
    | Add -> Int64.add (nth 0) (nth 1)
    | Sub -> Int64.sub (nth 0) (nth 1)
    | Cmp c ->
        let r = Int64.unsigned_compare (nth 0) (nth 1) in
        bool_to_i64
          (match c with
          | Eq -> r = 0
          | Ne -> r <> 0
          | Lt -> r < 0
          | Le -> r <= 0
          | Gt -> r > 0
          | Ge -> r >= 0)
    | Mux -> if Int64.equal (nth 0) 0L then nth 2 else nth 1
    | Black_box { kind; _ } -> black_box ~kind operands
  in
  mask ~width v

let is_wire op = Fpga.Op_class.equal (classify op) Fpga.Op_class.Wire

let equal a b =
  match (a, b) with
  | Input x, Input y -> String.equal x y
  | Const x, Const y -> Int64.equal x y
  | Not, Not | Concat, Concat | Add, Add | Sub, Sub | Mux, Mux -> true
  | Bitwise x, Bitwise y -> x = y
  | Shl x, Shl y | Shr x, Shr y -> x = y
  | Slice a, Slice b -> a.lo = b.lo && a.hi = b.hi
  | Cmp x, Cmp y -> x = y
  | Black_box x, Black_box y ->
      String.equal x.kind y.kind && String.equal x.resource y.resource
  | ( ( Input _ | Const _ | Not | Bitwise _ | Shl _ | Shr _ | Slice _ | Concat
      | Add | Sub | Cmp _ | Mux | Black_box _ ),
      _ ) ->
      false

let to_string = function
  | Input name -> Printf.sprintf "input(%s)" name
  | Const c -> Printf.sprintf "const(%Ld)" c
  | Not -> "not"
  | Bitwise And -> "and"
  | Bitwise Or -> "or"
  | Bitwise Xor -> "xor"
  | Shl s -> Printf.sprintf "shl(%d)" s
  | Shr s -> Printf.sprintf "shr(%d)" s
  | Slice { lo; hi } -> Printf.sprintf "slice[%d:%d]" hi lo
  | Concat -> "concat"
  | Add -> "add"
  | Sub -> "sub"
  | Cmp Eq -> "cmp.eq"
  | Cmp Ne -> "cmp.ne"
  | Cmp Lt -> "cmp.lt"
  | Cmp Le -> "cmp.le"
  | Cmp Gt -> "cmp.gt"
  | Cmp Ge -> "cmp.ge"
  | Mux -> "mux"
  | Black_box { kind; resource } -> Printf.sprintf "bb.%s@%s" kind resource

let pp = Fmt.of_to_string to_string
