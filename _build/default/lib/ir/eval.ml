type trace = int64 array array

let mask ~width v =
  if width >= 64 then v
  else Int64.logand v (Int64.sub (Int64.shift_left 1L width) 1L)

let no_black_box ~kind _ =
  invalid_arg ("Eval.run: no handler for black box kind " ^ kind)

let run ?(black_box = no_black_box) g ~iterations ~inputs =
  if iterations < 0 then invalid_arg "Eval.run: negative iteration count";
  let n = Cdfg.num_nodes g in
  let trace = Array.init iterations (fun _ -> Array.make n 0L) in
  let order = Cdfg.topo_order g in
  for iter = 0 to iterations - 1 do
    let operand (e : Cdfg.edge) =
      if e.dist = 0 then trace.(iter).(e.src)
      else if iter - e.dist >= 0 then trace.(iter - e.dist).(e.src)
      else mask ~width:(Cdfg.width g e.src) e.init
    in
    List.iter
      (fun id ->
        let nd = Cdfg.node g id in
        let args = Array.map operand nd.preds in
        let v =
          match nd.op with
          | Op.Input name -> inputs ~iter ~name
          | Op.Concat ->
              let low_width = Cdfg.width g nd.preds.(1).src in
              Int64.logor (Int64.shift_left args.(0) low_width) args.(1)
          | _ -> Op.eval nd.op ~width:nd.width ~black_box args
        in
        trace.(iter).(id) <- mask ~width:nd.width v)
      order
  done;
  trace

let outputs_of g trace ~iter =
  List.map (fun o -> (Cdfg.node_name g o, trace.(iter).(o))) (Cdfg.outputs g)
