(** Imperative construction of {!Cdfg.t} values.

    The builder assigns dense ids, infers result widths, and supports
    loop-carried recurrences through {e feedback cells}: a cell is a typed
    placeholder that can be consumed immediately and driven later by the
    node computing the next-iteration value. Feedback cells disappear from
    the final graph — their consumers end up with a direct edge to the
    driving node, carrying the cell's dependence distance and reset value. *)

type t
type value
(** Handle to a node (or feedback cell) inside a builder. *)

val create : unit -> t

(** {1 Sources} *)

val input : t -> ?name:string -> width:int -> string -> value
(** [input b ~width name] declares a primary input. The positional string is
    the input's name; [?name] overrides the diagnostic label. *)

val const : t -> width:int -> int64 -> value

val feedback : t -> width:int -> init:int64 -> dist:int -> value
(** A recurrence placeholder: reading it yields the driving node's value
    from [dist] iterations ago, [init] before that.
    @raise Invalid_argument if [dist < 1]. *)

val drive : t -> cell:value -> value -> unit
(** Connect the node computing the next value of the recurrence to the
    cell. Must be called exactly once per cell before {!finish}.
    @raise Invalid_argument if [cell] is not a feedback cell, is already
    driven, or widths differ. *)

(** {1 Operations} *)

val not_ : t -> ?name:string -> value -> value
val and_ : t -> ?name:string -> value -> value -> value
val or_ : t -> ?name:string -> value -> value -> value
val xor_ : t -> ?name:string -> value -> value -> value
val shl : t -> ?name:string -> value -> int -> value
val shr : t -> ?name:string -> value -> int -> value
val slice : t -> ?name:string -> value -> lo:int -> hi:int -> value

val concat : t -> ?name:string -> value -> value -> value
(** [concat b high low] — first operand supplies the high bits. *)

val add : t -> ?name:string -> value -> value -> value
val sub : t -> ?name:string -> value -> value -> value
val cmp : t -> ?name:string -> Op.cmp -> value -> value -> value
val mux : t -> ?name:string -> cond:value -> value -> value -> value

val black_box :
  t -> ?name:string -> kind:string -> resource:string -> width:int ->
  value list -> value

val node : t -> ?name:string -> op:Op.t -> width:int -> value list -> value
(** Generic node constructor; the typed wrappers above are preferred. *)

(** {1 Reductions} *)

val reduce : t -> ?name:string -> (t -> value -> value -> value) -> value list -> value
(** Balanced binary reduction tree, e.g.
    [reduce b xor_ values] builds an XOR tree.
    @raise Invalid_argument on the empty list. *)

(** {1 Finalization} *)

val output : t -> value -> unit
(** Mark a node as primary output (in call order). *)

val finish : t -> Cdfg.t
(** Validates and freezes the graph.
    @raise Invalid_argument if a feedback cell is undriven, no output was
    declared, or the graph violates {!Cdfg.validate}. *)

val width_of : t -> value -> int
