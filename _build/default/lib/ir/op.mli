(** Word-level opcodes of the CDFG.

    The set mirrors what the paper's Sec. 3.1 classifies: bitwise logic,
    constant shifts, carry-chain arithmetic, and black-box operations that
    never map to LUTs (memory ports, DSP multiplies, streamed I/O). *)

type bitwise = And | Or | Xor
type cmp = Eq | Ne | Lt | Le | Gt | Ge  (** unsigned comparisons *)

type t =
  | Input of string  (** primary input, named *)
  | Const of int64
  | Not
  | Bitwise of bitwise
  | Shl of int  (** left shift by a constant — pure wiring *)
  | Shr of int  (** logical right shift by a constant — pure wiring *)
  | Slice of { lo : int; hi : int }  (** bits [hi:lo], inclusive — wiring *)
  | Concat  (** [Concat [high; low]] — wiring *)
  | Add
  | Sub
  | Cmp of cmp
  | Mux  (** operands [cond; if_true; if_false], [cond] is 1 bit wide *)
  | Black_box of { kind : string; resource : string }
      (** e.g. [kind = "sbox_load"], [resource = "bram_port"] *)

val arity : t -> int option
(** Expected operand count, [None] for [Black_box] (any). *)

val classify : t -> Fpga.Op_class.t
(** Delay/area class used by the device model. *)

val result_width : t -> operand_widths:int list -> int
(** Width of the produced value given operand widths.
    @raise Invalid_argument when operand widths violate the opcode's
    rules (see {!val:validate_widths}). *)

val validate_widths : t -> operand_widths:int list -> (unit, string) result
(** Checks the width discipline: bitwise/arith operands equal widths; [Mux]
    condition is 1 bit and arms match; [Slice] within range; etc. *)

val eval :
  t ->
  width:int ->
  black_box:(kind:string -> int64 array -> int64) ->
  int64 array ->
  int64
(** Bit-accurate semantics of the opcode on operand values already masked
    to their widths; the result is masked to [width]. [Input] and [Const]
    take no operands ([Input] evaluation is handled by the simulator).
    @raise Invalid_argument on arity mismatch. *)

val is_wire : t -> bool
(** Zero delay, zero area (shifts by constant, slices, concats, consts,
    inputs). *)

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
