(** Word-level control data-flow graph (CDFG).

    Nodes are word-level operations; edges carry an inter-iteration
    dependence distance ([dist = 0] for intra-iteration dependences, [> 0]
    for loop-carried ones, footnote 1 of the paper). Graphs are immutable;
    construct them with {!module:Builder}. *)

type edge = {
  src : int;  (** producing node id *)
  dist : int;  (** dependence distance in iterations, [>= 0] *)
  init : int64;
      (** value observed by iterations [k < dist] (reset state of the
          recurrence register); ignored when [dist = 0] *)
}

type node = {
  id : int;
  op : Op.t;
  width : int;  (** width in bits of the produced value, [Bits(v)] *)
  preds : edge array;  (** operand order is significant *)
  name : string option;  (** for diagnostics and DOT output *)
}

type t

val create : nodes:node list -> outputs:int list -> t
(** Internal constructor used by {!module:Builder}; validates the graph.
    @raise Invalid_argument if {!validate} would return an error. *)

val num_nodes : t -> int
val node : t -> int -> node
val op : t -> int -> Op.t
val width : t -> int -> int
val preds : t -> int -> edge array
val succs : t -> int -> (int * int) list
(** [(consumer, dist)] pairs, deterministic order. *)

val outputs : t -> int list
(** Primary outputs, in declaration order, non-empty. *)

val is_output : t -> int -> bool

val inputs : t -> int list
(** Ids of [Input] nodes, in id order. *)

val node_name : t -> int -> string
(** User name if present, otherwise ["n<id>"]. *)

val topo_order : t -> int list
(** Topological order of the intra-iteration ([dist = 0]) subgraph; the
    graph restricted to such edges is acyclic by construction. *)

val fold : (node -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (node -> unit) -> t -> unit

val validate : t -> (unit, string) result
(** Structural invariants: ids dense and in range, distances non-negative,
    width discipline per opcode, the [dist = 0] subgraph acyclic, outputs
    non-empty and valid, input names unique. *)

val total_bits : t -> int
(** Sum of widths over all nodes. *)

val stats : t -> string
(** One-line summary: node/edge/black-box counts. *)

val pp : t Fmt.t
