type edge = { src : int; dist : int; init : int64 }

type node = {
  id : int;
  op : Op.t;
  width : int;
  preds : edge array;
  name : string option;
}

type t = {
  nodes : node array;
  outputs : int list;
  succs : (int * int) list array;  (* reverse adjacency, precomputed *)
  topo : int list;  (* cached topological order of the dist-0 subgraph *)
}

let num_nodes g = Array.length g.nodes

let node g i =
  if i < 0 || i >= Array.length g.nodes then
    invalid_arg (Printf.sprintf "Cdfg.node: id %d out of range" i);
  g.nodes.(i)

let op g i = (node g i).op
let width g i = (node g i).width
let preds g i = (node g i).preds
let succs g i = g.succs.(i)
let outputs g = g.outputs
let is_output g i = List.mem i g.outputs

let inputs g =
  Array.to_list g.nodes
  |> List.filter_map (fun n ->
         match n.op with
         | Op.Input _ -> Some n.id
         | Op.Const _ | Op.Not | Op.Bitwise _ | Op.Shl _ | Op.Shr _
         | Op.Slice _ | Op.Concat | Op.Add | Op.Sub | Op.Cmp _ | Op.Mux
         | Op.Black_box _ ->
             None)

let node_name g i =
  match (node g i).name with
  | Some s -> s
  | None -> (
      match (node g i).op with
      | Op.Input s -> s
      | _ -> Printf.sprintf "n%d" i)

let fold f g acc = Array.fold_left (fun acc n -> f n acc) acc g.nodes
let iter f g = Array.iter f g.nodes
let total_bits g = fold (fun n acc -> acc + n.width) g 0

(* Kahn's algorithm over dist-0 edges. Returns None on a cycle. *)
let compute_topo nodes =
  let n = Array.length nodes in
  let indeg = Array.make n 0 in
  Array.iter
    (fun nd ->
      Array.iter (fun e -> if e.dist = 0 then indeg.(nd.id) <- indeg.(nd.id) + 1) nd.preds)
    nodes;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let succs0 = Array.make n [] in
  Array.iter
    (fun nd ->
      Array.iter
        (fun e -> if e.dist = 0 then succs0.(e.src) <- nd.id :: succs0.(e.src))
        nd.preds)
    nodes;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr count;
    order := v :: !order;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      succs0.(v)
  done;
  if !count = n then Some (List.rev !order) else None

let validate_nodes nodes outputs =
  let n = Array.length nodes in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let fail fmt = Fmt.kstr (fun s -> Error s) fmt in
  let* () =
    if n = 0 then fail "empty graph"
    else if Array.exists (fun (nd : node) -> nd.id < 0 || nd.id >= n) nodes
    then fail "node id out of range"
    else Ok ()
  in
  let* () =
    let ok = ref (Ok ()) in
    Array.iteri
      (fun i nd ->
        if nd.id <> i then ok := fail "node ids not dense (slot %d holds %d)" i nd.id)
      nodes;
    !ok
  in
  let* () =
    let ok = ref (Ok ()) in
    Array.iter
      (fun nd ->
        Array.iter
          (fun e ->
            if e.src < 0 || e.src >= n then
              ok := fail "node %d: pred %d out of range" nd.id e.src
            else if e.dist < 0 then
              ok := fail "node %d: negative distance" nd.id)
          nd.preds)
      nodes;
    !ok
  in
  let* () =
    let ok = ref (Ok ()) in
    Array.iter
      (fun nd ->
        let operand_widths =
          Array.to_list (Array.map (fun e -> nodes.(e.src).width) nd.preds)
        in
        (match Op.validate_widths nd.op ~operand_widths with
        | Error msg -> ok := fail "node %d (%s): %s" nd.id (Op.to_string nd.op) msg
        | Ok () -> ());
        (* Where the opcode determines the result width, check it agrees. *)
        match nd.op with
        | Op.Not | Op.Bitwise _ | Op.Shl _ | Op.Shr _ | Op.Slice _ | Op.Concat
        | Op.Add | Op.Sub | Op.Cmp _ | Op.Mux -> (
            match !ok with
            | Error _ -> ()
            | Ok () ->
                let expect = Op.result_width nd.op ~operand_widths in
                if expect <> nd.width then
                  ok :=
                    fail "node %d (%s): declared width %d, expected %d" nd.id
                      (Op.to_string nd.op) nd.width expect)
        | Op.Input _ | Op.Const _ | Op.Black_box _ ->
            if nd.width <= 0 || nd.width > 63 then
              ok := fail "node %d: width %d out of [1,63]" nd.id nd.width)
      nodes;
    !ok
  in
  let* () =
    if outputs = [] then fail "no primary outputs"
    else if List.exists (fun o -> o < 0 || o >= n) outputs then
      fail "output id out of range"
    else Ok ()
  in
  let* () =
    let names = Hashtbl.create 8 in
    let ok = ref (Ok ()) in
    Array.iter
      (fun nd ->
        match nd.op with
        | Op.Input s ->
            if Hashtbl.mem names s then ok := fail "duplicate input name %s" s
            else Hashtbl.add names s ()
        | _ -> ())
      nodes;
    !ok
  in
  match compute_topo nodes with
  | None -> fail "combinational (dist-0) cycle"
  | Some topo -> Ok topo

let create ~nodes ~outputs =
  let nodes = Array.of_list nodes in
  match validate_nodes nodes outputs with
  | Error msg -> invalid_arg ("Cdfg.create: " ^ msg)
  | Ok topo ->
      let n = Array.length nodes in
      let succs = Array.make n [] in
      Array.iter
        (fun nd ->
          Array.iter
            (fun e -> succs.(e.src) <- (nd.id, e.dist) :: succs.(e.src))
            nd.preds)
        nodes;
      Array.iteri (fun i l -> succs.(i) <- List.rev l) succs;
      { nodes; outputs; succs; topo }

let topo_order g = g.topo

let validate g = Result.map (fun _ -> ()) (validate_nodes g.nodes g.outputs)

let stats g =
  let bb =
    fold
      (fun n acc ->
        match n.op with Op.Black_box _ -> acc + 1 | _ -> acc)
      g 0
  in
  let edges = fold (fun n acc -> acc + Array.length n.preds) g 0 in
  let carried =
    fold
      (fun n acc ->
        acc + Array.length (Array.of_seq (Seq.filter (fun e -> e.dist > 0)
                                            (Array.to_seq n.preds))))
      g 0
  in
  Printf.sprintf "%d nodes, %d edges (%d loop-carried), %d black-box, %d bits"
    (num_nodes g) edges carried bb (total_bits g)

let pp ppf g =
  Fmt.pf ppf "@[<v>";
  iter
    (fun n ->
      Fmt.pf ppf "%4d: %-14s w=%-3d [%a]%s@,"
        n.id (Op.to_string n.op) n.width
        Fmt.(array ~sep:comma (fun ppf e ->
          if e.dist = 0 then Fmt.int ppf e.src
          else Fmt.pf ppf "%d@%d" e.src e.dist))
        n.preds
        (if List.mem n.id g.outputs then "  (PO)" else ""))
    g;
  Fmt.pf ppf "@]"
