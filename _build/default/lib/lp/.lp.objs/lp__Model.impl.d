lib/lp/model.ml: Array Float Fmt Hashtbl Int List Option Printf
