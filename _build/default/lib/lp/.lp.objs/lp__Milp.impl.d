lib/lp/milp.ml: Array Float Fmt List Logs Model Simplex Sys
