lib/lp/milp.mli: Fmt Model
