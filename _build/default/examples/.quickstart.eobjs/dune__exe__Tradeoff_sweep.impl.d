examples/tradeoff_sweep.ml: Benchmarks Fmt Fpga Ir List Lp Mams Report Sched
