examples/reed_solomon.ml: Array Benchmarks Bitdep Cuts Filename Fmt Fpga Ir List Mams Rtl Sched
