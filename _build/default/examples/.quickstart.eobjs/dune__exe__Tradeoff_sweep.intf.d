examples/tradeoff_sweep.mli:
