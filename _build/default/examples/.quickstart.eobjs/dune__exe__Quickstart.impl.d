examples/quickstart.ml: Fmt Fpga Int64 Ir List Mams Rtl
