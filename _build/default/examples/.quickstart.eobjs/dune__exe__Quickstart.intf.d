examples/quickstart.mli:
