examples/reed_solomon.mli:
