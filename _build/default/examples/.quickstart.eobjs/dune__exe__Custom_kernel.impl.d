examples/custom_kernel.ml: Filename Fmt Fpga Int64 Ir List Mams Rtl Sched
