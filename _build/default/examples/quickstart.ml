(* Quickstart: build a word-level dataflow graph with the Builder, run the
   three pipeline-synthesis flows of the paper, and compare quality of
   results.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A small parity/accumulate kernel: out = popcount-ish mix of the
     current input folded into a running state. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let acc = Ir.Builder.feedback b ~width:8 ~init:0L ~dist:1 in
  let m1 = Ir.Builder.xor_ b x (Ir.Builder.shr b x 2) in
  let m2 = Ir.Builder.xor_ b m1 (Ir.Builder.shl b m1 1) in
  let folded = Ir.Builder.xor_ b m2 acc in
  Ir.Builder.drive b ~cell:acc folded;
  let thresh = Ir.Builder.const b ~width:8 0x80L in
  let sign = Ir.Builder.cmp b Ir.Op.Ge folded thresh in
  let red = Ir.Builder.const b ~width:8 0x1dL in
  let reduced = Ir.Builder.xor_ b folded red in
  let out = Ir.Builder.mux b ~cond:sign reduced folded in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in

  Fmt.pr "graph: %s@.@." (Ir.Cdfg.stats g);

  (* Simulate a few iterations to see what it computes. *)
  let trace =
    Ir.Eval.run g ~iterations:4 ~inputs:(fun ~iter ~name:_ ->
        Int64.of_int (17 * (iter + 1)))
  in
  for i = 0 to 3 do
    List.iter
      (fun (name, v) -> Fmt.pr "iteration %d: %s = 0x%Lx@." i name v)
      (Ir.Eval.outputs_of g trace ~iter:i)
  done;
  Fmt.pr "@.";

  (* Synthesize at a 10 ns clock, II = 1, on a 4-LUT device. *)
  let device = Fpga.Device.make ~t_clk:10.0 () in
  let setup = { (Mams.Flow.default_setup ~device) with time_limit = 15.0 } in
  List.iter
    (fun (m, r) ->
      match r with
      | Ok r -> Fmt.pr "%a@." Mams.Flow.pp_result r
      | Error e -> Fmt.pr "%s failed: %s@." (Mams.Flow.method_name m) e)
    (Mams.Flow.run_all setup g);

  (* The mapping-aware result as Verilog. *)
  match Mams.Flow.run setup Mams.Flow.Milp_map g with
  | Ok r ->
      let rtl = Rtl.emit ~module_name:"quickstart" g r.cover r.schedule in
      Fmt.pr "@.--- generated RTL (%d register bits) ---@.%s@."
        rtl.Rtl.register_bits rtl.Rtl.source
  | Error e -> Fmt.pr "milp-map failed: %s@." e
