(* Ablation A3: sweep the Eq. 15 trade-off weights (alpha = LUTs,
   beta = registers) and the target initiation interval, on the GFMUL
   kernel — showing how the MILP trades LUT duplication against pipeline
   registers, and how relaxing II shrinks both.

   Run with:  dune exec examples/tradeoff_sweep.exe *)

let () =
  let e = Benchmarks.Registry.find "GFMUL" in
  let g = e.build () in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  Fmt.pr "GFMUL: %s@.@." (Ir.Cdfg.stats g);

  Fmt.pr "--- alpha/beta sweep (II = 1, MILP-map, 15 s budget each) ---@.";
  let columns =
    Report.
      [
        { title = "alpha"; align = Right };
        { title = "beta"; align = Right };
        { title = "LUT"; align = Right };
        { title = "FF"; align = Right };
        { title = "Lat"; align = Right };
        { title = "Status"; align = Left };
      ]
  in
  let rows =
    List.map
      (fun (alpha, beta) ->
        let setup =
          { (Mams.Flow.default_setup ~device) with
            alpha; beta; time_limit = 15.0 }
        in
        match Mams.Flow.run setup Mams.Flow.Milp_map g with
        | Ok r ->
            [
              Fmt.str "%.2f" alpha;
              Fmt.str "%.2f" beta;
              string_of_int r.Mams.Flow.qor.Sched.Qor.luts;
              string_of_int r.Mams.Flow.qor.Sched.Qor.ffs;
              string_of_int r.Mams.Flow.qor.Sched.Qor.latency;
              (match r.Mams.Flow.solve.Mams.Flow.milp_status with
              | Some s -> Fmt.str "%a" Lp.Milp.pp_status s
              | None -> "-");
            ]
        | Error err ->
            [ Fmt.str "%.2f" alpha; Fmt.str "%.2f" beta; "-"; "-"; "-"; err ])
      [ (1.0, 0.01); (0.5, 0.5); (0.01, 1.0) ]
  in
  Fmt.pr "%s@." (Report.table ~columns rows);

  Fmt.pr "--- II sweep (alpha = beta = 0.5, heuristic + map-first) ---@.";
  let columns =
    Report.
      [
        { title = "II"; align = Right };
        { title = "Method"; align = Left };
        { title = "LUT"; align = Right };
        { title = "FF"; align = Right };
        { title = "Lat"; align = Right };
      ]
  in
  let rows =
    List.concat_map
      (fun ii ->
        let setup =
          { (Mams.Flow.default_setup ~device) with ii; time_limit = 10.0 }
        in
        List.filter_map
          (fun m ->
            match Mams.Flow.run setup m g with
            | Ok r ->
                Some
                  [
                    string_of_int ii;
                    Mams.Flow.method_name m;
                    string_of_int r.Mams.Flow.qor.Sched.Qor.luts;
                    string_of_int r.Mams.Flow.qor.Sched.Qor.ffs;
                    string_of_int r.Mams.Flow.qor.Sched.Qor.latency;
                  ]
            | Error _ -> None)
          [ Mams.Flow.Hls_tool; Mams.Flow.Map_heuristic ])
      [ 1; 2; 3 ]
  in
  Fmt.pr "%s@." (Report.table ~columns rows);
  Fmt.pr
    "Note: II only affects steady-state register sharing here — with one@.";
  Fmt.pr
    "sample in flight per II cycles the same lifetime needs fewer overlap@.";
  Fmt.pr "registers, and black-box resource pressure (Eq. 14) relaxes.@."
