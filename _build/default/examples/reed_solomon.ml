(* The paper's running example, end to end: Figure 1's Reed-Solomon
   encoder kernel, Figure 2's word-level cut enumeration, both schedules,
   and the generated artifacts (DOT + Verilog).

   Run with:  dune exec examples/reed_solomon.exe *)

let section title =
  Fmt.pr "@.== %s ==@.@." title

let () =
  let width = 2 in
  let g = Benchmarks.Rs.kernel ~width () in
  section "The kernel (Figure 1's DFG, 2-bit operands as in Figure 2)";
  Fmt.pr "%a@." Ir.Cdfg.pp g;

  section "Bit-level dependence tracking (Sec. 3.1)";
  (* The famous observation: C = (B >= 2^(w-1)) only probes B's MSB. *)
  Ir.Cdfg.iter
    (fun nd ->
      match nd.op with
      | Ir.Op.Cmp _ ->
          let step = Bitdep.dep g ~node:nd.id ~bit:0 in
          Fmt.pr "DEP(%s[0]) = {%a}  — the sign test reads only the MSB@."
            (Ir.Cdfg.node_name g nd.id)
            Fmt.(list ~sep:comma Bitdep.Bitpos.pp)
            step.Bitdep.reads
      | _ -> ())
    g;

  section "Word-level cut enumeration (Figure 2, Algorithm 1)";
  let cuts = Cuts.enumerate ~k:4 g in
  Array.iteri
    (fun v cs -> Fmt.pr "%a@." (Cuts.pp_node_cuts g) (v, cs))
    cuts;

  section "Schedules (Figure 1a vs 1b)";
  let device = Fpga.Device.figure1 in
  let delays =
    Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ()
  in
  let setup =
    { (Mams.Flow.default_setup ~device) with delays; time_limit = 30.0 }
  in
  let show label m =
    match Mams.Flow.run setup m g with
    | Error e -> Fmt.pr "%s: error %s@." label e
    | Ok r ->
        Fmt.pr "(%s) %d stage(s), %d LUTs, %d FFs, CP %.2f ns@." label
          (Sched.Schedule.latency r.Mams.Flow.schedule + 1)
          r.Mams.Flow.qor.Sched.Qor.luts r.Mams.Flow.qor.Sched.Qor.ffs
          r.Mams.Flow.qor.Sched.Qor.cp;
        Fmt.pr "%a@." (Sched.Schedule.pp_detailed g) r.Mams.Flow.schedule;
        if m = Mams.Flow.Milp_map then begin
          Fmt.pr "selected cover:@.%a@." (Sched.Cover.pp g) r.Mams.Flow.cover;
          let dot = Filename.temp_file "rs_kernel" ".dot" in
          Ir.Dot.write_file
            ~cycle_of:(fun v -> r.Mams.Flow.schedule.Sched.Schedule.cycle.(v))
            ~path:dot g;
          let v = Filename.temp_file "rs_kernel" ".v" in
          Rtl.write_file ~path:v
            (Rtl.emit ~module_name:"rs_kernel" g r.Mams.Flow.cover
               r.Mams.Flow.schedule);
          Fmt.pr "artifacts: %s, %s@." dot v
        end
  in
  show "a: traditional, additive delays" Mams.Flow.Hls_tool;
  show "b: mapping-aware MILP" Mams.Flow.Milp_map;

  section "The full encoder (Table 1's RS row, scaled)";
  let g = Benchmarks.Rs.full ~width:4 ~taps:4 () in
  let device = Fpga.Device.make ~t_clk:10.0 () in
  let setup = { (Mams.Flow.default_setup ~device) with time_limit = 20.0 } in
  List.iter
    (fun (m, r) ->
      match r with
      | Ok r -> Fmt.pr "%a@." Mams.Flow.pp_result r
      | Error e -> Fmt.pr "%s failed: %s@." (Mams.Flow.method_name m) e)
    (Mams.Flow.run_all setup g)
