(* Building your own accelerator kernel: a 4-tap FIR-like filter whose
   multiplies are black-box DSP blocks under a resource budget, pipelined
   at the initiation interval the budget allows.

   Demonstrates: black boxes, Eq. 14 resource constraints, MII
   computation, II exploration, verification, and RTL emission.

   Run with:  dune exec examples/custom_kernel.exe *)

let build_fir ~taps ~width =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width "x" in
  (* Delay line: each stage is a feedback cell holding the previous tap's
     value from one iteration ago; a zero-shift wire node materializes the
     cell's value so it can drive the next stage. *)
  let rec delays acc prev i =
    if i >= taps then List.rev acc
    else begin
      let cell = Ir.Builder.feedback b ~width ~init:0L ~dist:1 in
      Ir.Builder.drive b ~cell prev;
      let tap = Ir.Builder.shl b cell 0 in
      delays (tap :: acc) tap (i + 1)
    end
  in
  let taps_sig = x :: delays [] x 1 in
  (* black-box multiplies on the "dsp" resource class *)
  let products =
    List.mapi
      (fun i t ->
        let coeff = Ir.Builder.const b ~width (Int64.of_int (2 * i + 1)) in
        Ir.Builder.black_box b ~kind:"mult" ~resource:"dsp" ~width
          [ t; coeff ])
      taps_sig
  in
  let sum =
    Ir.Builder.reduce b (fun b a c -> Ir.Builder.add b a c) products
  in
  Ir.Builder.output b sum;
  Ir.Builder.finish b

let () =
  let g = build_fir ~taps:4 ~width:8 in
  Fmt.pr "FIR kernel: %s@.@." (Ir.Cdfg.stats g);

  let device = Fpga.Device.make ~t_clk:10.0 () in
  let delays = Fpga.Delays.default in

  (* With only 2 DSP blocks, 4 multiplies force II >= 2. *)
  let resources = Fpga.Resource.of_list [ ("dsp", 2) ] in
  let mii = Sched.Heuristic.min_ii ~delays ~device ~resources g in
  Fmt.pr "2 DSP blocks for 4 multiplies: minimum II = %d@.@." mii;

  List.iter
    (fun ii ->
      let setup =
        { (Mams.Flow.default_setup ~device) with
          resources; ii; time_limit = 15.0 }
      in
      Fmt.pr "--- II = %d ---@." ii;
      List.iter
        (fun (m, r) ->
          match r with
          | Ok r -> Fmt.pr "%a@." Mams.Flow.pp_result r
          | Error e -> Fmt.pr "%-9s %s@." (Mams.Flow.method_name m) e)
        (Mams.Flow.run_all setup g))
    [ 1; mii ];

  (* Emit the II = MII datapath as Verilog. *)
  let setup =
    { (Mams.Flow.default_setup ~device) with
      resources; ii = mii; time_limit = 15.0 }
  in
  match Mams.Flow.run setup Mams.Flow.Milp_map g with
  | Ok r ->
      let rtl = Rtl.emit ~module_name:"fir4" g r.cover r.schedule in
      Fmt.pr "@.fir4.v: %d register bits, %d LUT expressions@."
        rtl.Rtl.register_bits rtl.Rtl.lut_expressions;
      let path = Filename.temp_file "fir4" ".v" in
      Rtl.write_file ~path rtl;
      Fmt.pr "wrote %s@." path
  | Error e -> Fmt.pr "map flow failed: %s@." e
