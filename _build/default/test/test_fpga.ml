(* Tests for the device model, delay characterization and resource
   budgets. *)

let test_device_defaults () =
  let d = Fpga.Device.default in
  Alcotest.(check int) "k" 4 d.Fpga.Device.k;
  Alcotest.(check (float 1e-9)) "period" 10.0 (Fpga.Device.usable_period d);
  Alcotest.(check int) "levels" 11 (Fpga.Device.levels_per_cycle d)

let test_device_figure1 () =
  let d = Fpga.Device.figure1 in
  Alcotest.(check (float 1e-9)) "t_clk" 5.0 d.Fpga.Device.t_clk;
  Alcotest.(check int) "levels at 2ns LUTs" 2 (Fpga.Device.levels_per_cycle d)

let test_device_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "k < 2" true
    (raises (fun () -> ignore (Fpga.Device.make ~k:1 ~t_clk:10.0 ())));
  Alcotest.(check bool) "negative delay" true
    (raises (fun () -> ignore (Fpga.Device.make ~lut_delay:(-1.0) ~t_clk:10.0 ())));
  Alcotest.(check bool) "period shorter than one LUT" true
    (raises (fun () -> ignore (Fpga.Device.make ~lut_delay:2.0 ~t_clk:1.0 ())))

let test_device_uncertainty () =
  let d = Fpga.Device.make ~t_clk:10.0 ~clock_uncertainty:1.5 () in
  Alcotest.(check (float 1e-9)) "usable" 8.5 (Fpga.Device.usable_period d)

let test_delays_classes () =
  let t = Fpga.Delays.default in
  let d cls width = Fpga.Delays.additive t ~cls ~width in
  Alcotest.(check (float 1e-9)) "wire free" 0.0 (d Fpga.Op_class.Wire 32);
  Alcotest.(check (float 1e-9)) "logic flat" 1.37 (d Fpga.Op_class.Logic 32);
  Alcotest.(check bool) "arith grows with width" true
    (d Fpga.Op_class.Arith 32 > d Fpga.Op_class.Arith 8);
  Alcotest.(check bool) "bram characterized" true
    (d (Fpga.Op_class.Black_box "bram_port") 8 > 1.0);
  (* unknown black-box class falls back to logic *)
  Alcotest.(check (float 1e-9)) "unknown bb" 1.37
    (d (Fpga.Op_class.Black_box "mystery") 8)

let test_delays_latency_cycles () =
  let device = Fpga.Device.make ~t_clk:5.0 () in
  let t = Fpga.Delays.make ~black_box:[ ("slow", 12.0) ] () in
  Alcotest.(check int) "sub-cycle op" 0
    (Fpga.Delays.latency_cycles t ~device ~cls:Fpga.Op_class.Logic ~width:8);
  Alcotest.(check int) "multi-cycle bb" 2
    (Fpga.Delays.latency_cycles t ~device
       ~cls:(Fpga.Op_class.Black_box "slow") ~width:8)

let test_delays_with_logic () =
  let t = Fpga.Delays.default in
  let t' = Fpga.Delays.with_logic t ~logic:0.9 in
  Alcotest.(check (float 1e-9)) "overridden" 0.9
    (Fpga.Delays.additive t' ~cls:Fpga.Op_class.Logic ~width:8);
  Alcotest.(check (float 1e-9)) "arith untouched"
    (Fpga.Delays.additive t ~cls:Fpga.Op_class.Arith ~width:8)
    (Fpga.Delays.additive t' ~cls:Fpga.Op_class.Arith ~width:8)

let test_resource_budget () =
  let b = Fpga.Resource.of_list [ ("dsp", 2); ("bram_port", 4) ] in
  Alcotest.(check (option int)) "dsp" (Some 2) (Fpga.Resource.limit b "dsp");
  Alcotest.(check (option int)) "unlimited class" None
    (Fpga.Resource.limit b "uram");
  Alcotest.(check (list string)) "classes" [ "bram_port"; "dsp" ]
    (Fpga.Resource.classes b);
  Alcotest.(check (list string)) "unlimited" []
    (Fpga.Resource.classes Fpga.Resource.unlimited)

let test_resource_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative" true
    (raises (fun () -> ignore (Fpga.Resource.of_list [ ("x", -1) ])));
  Alcotest.(check bool) "duplicate" true
    (raises (fun () -> ignore (Fpga.Resource.of_list [ ("x", 1); ("x", 2) ])))

let test_op_class_predicates () =
  Alcotest.(check bool) "bb is black box" true
    (Fpga.Op_class.is_black_box (Fpga.Op_class.Black_box "dsp"));
  Alcotest.(check bool) "logic mappable" true
    (Fpga.Op_class.is_mappable Fpga.Op_class.Logic);
  Alcotest.(check bool) "bb not mappable" false
    (Fpga.Op_class.is_mappable (Fpga.Op_class.Black_box "dsp"));
  Alcotest.(check bool) "equal" true
    (Fpga.Op_class.equal (Fpga.Op_class.Black_box "a") (Fpga.Op_class.Black_box "a"));
  Alcotest.(check bool) "not equal" false
    (Fpga.Op_class.equal (Fpga.Op_class.Black_box "a") Fpga.Op_class.Wire)

let () =
  Alcotest.run "fpga"
    [
      ( "device",
        [
          Alcotest.test_case "defaults" `Quick test_device_defaults;
          Alcotest.test_case "figure1" `Quick test_device_figure1;
          Alcotest.test_case "validation" `Quick test_device_validation;
          Alcotest.test_case "uncertainty" `Quick test_device_uncertainty;
        ] );
      ( "delays",
        [
          Alcotest.test_case "classes" `Quick test_delays_classes;
          Alcotest.test_case "latency cycles" `Quick test_delays_latency_cycles;
          Alcotest.test_case "with_logic" `Quick test_delays_with_logic;
        ] );
      ( "resources",
        [
          Alcotest.test_case "budget" `Quick test_resource_budget;
          Alcotest.test_case "validation" `Quick test_resource_validation;
          Alcotest.test_case "op classes" `Quick test_op_class_predicates;
        ] );
    ]
