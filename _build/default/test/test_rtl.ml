(* Tests for the Verilog backend: structural shape, and agreement between
   the emitted register bits and the QoR liveness model. *)

let device = Fpga.Device.make ~t_clk:10.0 ()
let delays = Fpga.Delays.default

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_occurrences s sub =
  let m = String.length sub in
  let rec go i acc =
    if i + m > String.length s then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let flow_result e =
  let entry = Benchmarks.Registry.find e in
  let g = entry.build () in
  let device = Fpga.Device.make ~t_clk:entry.t_clk () in
  let setup =
    { (Mams.Flow.default_setup ~device) with
      resources = entry.resources;
      time_limit = 5.0 }
  in
  match Mams.Flow.run setup Mams.Flow.Hls_tool g with
  | Ok r -> (g, r)
  | Error err -> Alcotest.failf "%s flow: %s" e err

let test_module_shape () =
  let g, r = flow_result "CLZ" in
  let rtl = Rtl.emit ~module_name:"clz16" g r.cover r.schedule in
  Alcotest.(check bool) "module header" true (contains rtl.source "module clz16");
  Alcotest.(check bool) "clocked" true (contains rtl.source "posedge clk");
  Alcotest.(check bool) "has an output port" true (contains rtl.source "output wire");
  Alcotest.(check bool) "ends properly" true (contains rtl.source "endmodule")

let test_register_bits_match_qor () =
  List.iter
    (fun name ->
      let g, r = flow_result name in
      let rtl = Rtl.emit g r.cover r.schedule in
      Alcotest.(check int)
        (name ^ ": RTL registers = QoR FF model")
        r.qor.Sched.Qor.ffs rtl.register_bits)
    [ "CLZ"; "XORR"; "GFMUL"; "CORDIC"; "MT"; "RS"; "DR" ]

let test_black_box_instance () =
  let g, r = flow_result "AES" in
  let rtl = Rtl.emit g r.cover r.schedule in
  Alcotest.(check int) "four sbox instances" 4
    (count_occurrences rtl.source "sbox #(");
  Alcotest.(check bool) "reads clk" true (contains rtl.source ".clk(clk)")

let test_single_stage_has_no_always () =
  (* A purely combinational schedule emits no register block. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  Ir.Builder.output b (Ir.Builder.xor_ b x y);
  let g = Ir.Builder.finish b in
  let cuts = Cuts.enumerate ~k:4 g in
  let cover = Techmap.map_global ~device ~delays ~cuts g in
  match
    Sched.Mapsched.schedule ~device ~delays
      ~resources:Fpga.Resource.unlimited ~ii:1 g cover
  with
  | Error e -> Alcotest.failf "mapsched: %a" Sched.Heuristic.pp_error e
  | Ok s ->
      let rtl = Rtl.emit g cover s in
      Alcotest.(check int) "no registers" 0 rtl.register_bits;
      Alcotest.(check bool) "no always block" false
        (contains rtl.source "always")

let test_invalid_cover_rejected () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  Ir.Builder.output b (Ir.Builder.not_ b x);
  let g = Ir.Builder.finish b in
  let s =
    Sched.Schedule.make ~ii:1 ~cycle:(Array.make 2 0)
      ~start:(Array.make 2 0.0)
  in
  let empty = Sched.Cover.make g [] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rtl.emit g empty s);
       false
     with Invalid_argument _ -> true)

let test_write_file () =
  let g, r = flow_result "GFMUL" in
  let rtl = Rtl.emit g r.cover r.schedule in
  let path = Filename.temp_file "pipesyn" ".v" in
  Rtl.write_file ~path rtl;
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "round trip" (String.length rtl.source) len

let test_register_init_values () =
  (* the MT state register initializes to the seed, and the Verilog carries
     the initializer *)
  let g = Benchmarks.Mt.build ~width:16 () in
  let setup =
    { (Mams.Flow.default_setup ~device) with time_limit = 5.0 }
  in
  match Mams.Flow.run setup Mams.Flow.Hls_tool g with
  | Error e -> Alcotest.failf "flow: %s" e
  | Ok r ->
      let nl = Rtl.Netlist.of_design g r.cover r.schedule in
      Alcotest.(check bool) "a register carries the twister seed" true
        (List.exists
           (fun (reg : Rtl.Netlist.reg) -> Int64.equal reg.init 0x1234L)
           nl.Rtl.Netlist.regs);
      let rtl = Rtl.emit g r.cover r.schedule in
      Alcotest.(check bool) "verilog initializer emitted" true
        (contains rtl.source "16'h1234")

let test_netlist_masking () =
  (* widths are respected through adds that would otherwise overflow *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  Ir.Builder.output b (Ir.Builder.add b x y);
  let g = Ir.Builder.finish b in
  let cuts = Cuts.enumerate ~k:4 g in
  let cover = Techmap.map_global ~device ~delays ~cuts g in
  match
    Sched.Mapsched.schedule ~device ~delays
      ~resources:Fpga.Resource.unlimited ~ii:1 g cover
  with
  | Error e -> Alcotest.failf "mapsched: %a" Sched.Heuristic.pp_error e
  | Ok s ->
      let nl = Rtl.Netlist.of_design g cover s in
      let sim =
        Rtl.Netlist.simulate nl ~cycles:1 ~inputs:(fun ~cycle:_ ~name ->
            if name = "x" then 15L else 3L)
      in
      let _, arr = List.hd sim.Rtl.Netlist.outputs in
      (* 15 + 3 = 18 masked to 4 bits = 2 *)
      Alcotest.(check int64) "wraps at the width" 2L arr.(0)

(* --- cycle-accurate pipeline simulation vs the dataflow semantics ----- *)

(* Feed a stream of iterations into the emitted pipeline netlist and check
   that each primary output produces, at cycle k*II + S_po, exactly the
   value the bit-accurate dataflow simulator computes for iteration k.
   This validates schedule, cover, register placement and the netlist
   construction end to end. *)
let check_pipeline_equivalence name method_ =
  let entry = Benchmarks.Registry.find name in
  let g = entry.build () in
  let device = Fpga.Device.make ~t_clk:entry.t_clk () in
  let setup =
    { (Mams.Flow.default_setup ~device) with
      resources = entry.resources;
      time_limit = 5.0 }
  in
  match Mams.Flow.run setup method_ g with
  | Error err -> Alcotest.failf "%s flow: %s" name err
  | Ok r ->
      let iterations = 12 in
      let seed = Hashtbl.hash name in
      let stim ~iter ~name:iname =
        Int64.of_int ((seed + (31 * iter) + (7 * Hashtbl.hash iname)) land 0xfff)
      in
      let black_box =
        match entry.black_box with
        | Some h -> h
        | None -> fun ~kind _ -> Alcotest.failf "unexpected black box %s" kind
      in
      let trace = Ir.Eval.run ~black_box g ~iterations ~inputs:stim in
      let nl = Rtl.Netlist.of_design g r.cover r.schedule in
      let latency = Sched.Schedule.latency r.schedule in
      let cycles = iterations + latency in
      let sim =
        Rtl.Netlist.simulate ~black_box nl ~cycles ~inputs:(fun ~cycle ~name ->
            stim ~iter:cycle ~name)
      in
      List.iteri
        (fun i po ->
          let port = List.nth sim.Rtl.Netlist.outputs i in
          let arr = snd port in
          let s_po = r.schedule.Sched.Schedule.cycle.(po) in
          for k = 0 to iterations - 1 do
            let cycle = k + s_po in
            if cycle < cycles then
              let got = arr.(cycle) in
              let expect = trace.(k).(po) in
              if not (Int64.equal got expect) then
                Alcotest.failf
                  "%s/%s output %s: iteration %d (cycle %d): rtl 0x%Lx <> \
                   dataflow 0x%Lx"
                  name
                  (Mams.Flow.method_name method_)
                  (Ir.Cdfg.node_name g po) k cycle got expect
          done)
        (Ir.Cdfg.outputs g)

let test_pipeline_equiv_hls () =
  List.iter
    (fun n -> check_pipeline_equivalence n Mams.Flow.Hls_tool)
    [ "CLZ"; "XORR"; "GFMUL"; "CORDIC"; "MT"; "AES"; "RS"; "DR"; "GSM" ]

let test_pipeline_equiv_mapfirst () =
  List.iter
    (fun n -> check_pipeline_equivalence n Mams.Flow.Map_heuristic)
    [ "CLZ"; "XORR"; "GFMUL"; "CORDIC"; "MT"; "AES"; "RS"; "DR"; "GSM" ]

let test_pipeline_equiv_milp_map_small () =
  check_pipeline_equivalence "GFMUL" Mams.Flow.Milp_map;
  check_pipeline_equivalence "MT" Mams.Flow.Milp_map

let () =
  Alcotest.run "rtl"
    [
      ( "simulation",
        [
          Alcotest.test_case "pipeline = dataflow (hls)" `Quick
            test_pipeline_equiv_hls;
          Alcotest.test_case "pipeline = dataflow (map-first)" `Quick
            test_pipeline_equiv_mapfirst;
          Alcotest.test_case "pipeline = dataflow (milp-map)" `Slow
            test_pipeline_equiv_milp_map_small;
          Alcotest.test_case "register inits" `Quick test_register_init_values;
          Alcotest.test_case "width masking" `Quick test_netlist_masking;
        ] );
      ( "emit",
        [
          Alcotest.test_case "module shape" `Quick test_module_shape;
          Alcotest.test_case "register bits = qor" `Quick
            test_register_bits_match_qor;
          Alcotest.test_case "black boxes" `Quick test_black_box_instance;
          Alcotest.test_case "combinational" `Quick
            test_single_stage_has_no_always;
          Alcotest.test_case "invalid cover" `Quick test_invalid_cover_rejected;
          Alcotest.test_case "write file" `Quick test_write_file;
        ] );
    ]
