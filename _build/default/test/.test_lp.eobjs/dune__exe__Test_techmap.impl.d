test/test_techmap.ml: Alcotest Array Benchmarks Bitdep Cuts Fpga Ir List Printf Sched Techmap
