test/test_bitdep.ml: Alcotest Bitdep Fmt Gen Ir List QCheck QCheck_alcotest String
