test/test_cuts.ml: Alcotest Array Benchmarks Bitdep Cuts Fpga Gen Int Ir List Printf QCheck QCheck_alcotest
