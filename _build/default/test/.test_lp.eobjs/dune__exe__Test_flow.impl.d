test/test_flow.ml: Alcotest Benchmarks Fpga Fun Ir List Mams Printf Sched
