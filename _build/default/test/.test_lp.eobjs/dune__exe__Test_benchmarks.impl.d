test/test_benchmarks.ml: Alcotest Array Benchmarks Fmt Gen Int64 Ir List Printf QCheck QCheck_alcotest Scanf String
