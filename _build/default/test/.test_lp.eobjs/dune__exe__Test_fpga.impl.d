test/test_fpga.ml: Alcotest Fpga
