test/test_formulation.ml: Alcotest Array Benchmarks Cuts Fpga Ir List Lp Mams Sched String
