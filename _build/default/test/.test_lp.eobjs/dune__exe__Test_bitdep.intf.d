test/test_bitdep.mli:
