test/test_formulation.mli:
