test/test_ir.ml: Alcotest Array Benchmarks Gen Int64 Ir List QCheck QCheck_alcotest String
