test/test_opt.ml: Alcotest Array Benchmarks Fpga Hashtbl Int64 Ir List Mams Opt Option
