test/test_rtl.ml: Alcotest Array Benchmarks Cuts Filename Fpga Hashtbl Int64 Ir List Mams Rtl Sched String Sys Techmap
