test/test_fuzz.ml: Alcotest Array Bitdep Cuts Fpga Gen Hashtbl Int64 Ir List Mams Opt Printf QCheck QCheck_alcotest Rtl Sched
