test/test_sched.ml: Alcotest Array Benchmarks Cuts Fpga Ir List Mams Printf Sched String Techmap
