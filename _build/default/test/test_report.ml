(* Tests for the table renderer and percentage formatting. *)

let test_table_alignment () =
  let columns =
    Report.[ { title = "Name"; align = Left }; { title = "N"; align = Right } ]
  in
  let s = Report.table ~columns [ [ "a"; "1" ]; [ "long"; "42" ] ] in
  let lines = String.split_on_char '\n' s in
  (match lines with
  | header :: rule :: _ ->
      Alcotest.(check bool) "header first" true
        (String.length header > 0 && header.[0] = 'N');
      Alcotest.(check bool) "rule dashes" true
        (String.for_all (fun c -> c = '-') rule)
  | _ -> Alcotest.fail "expected at least two lines");
  (* right-aligned numeric column: "1" is padded on the left *)
  Alcotest.(check bool) "right alignment" true
    (List.exists
       (fun l -> String.length l >= 2 && String.sub l (String.length l - 2) 2 = " 1")
       lines)

let test_table_ragged_rejected () =
  let columns = Report.[ { title = "A"; align = Left } ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Report.table ~columns [ [ "x"; "y" ] ]);
       false
     with Invalid_argument _ -> true)

let test_pct () =
  Alcotest.(check string) "decrease" "(-42.1%)" (Report.pct ~reference:1000 579);
  Alcotest.(check string) "increase" "(+12.6%)" (Report.pct ~reference:1000 1126);
  Alcotest.(check string) "flat" "(+0.0%)" (Report.pct ~reference:50 50);
  Alcotest.(check string) "zero reference" "" (Report.pct ~reference:0 10);
  Alcotest.(check string) "to zero" "(-100.0%)" (Report.pct ~reference:257 0)

let test_f2 () =
  Alcotest.(check string) "rounding" "5.43" (Report.f2 5.431);
  Alcotest.(check string) "whole" "10.00" (Report.f2 10.0)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged" `Quick test_table_ragged_rejected;
          Alcotest.test_case "pct" `Quick test_pct;
          Alcotest.test_case "f2" `Quick test_f2;
        ] );
    ]
