(* Tests for the frontend optimizer: each pass individually, the fixpoint
   pipeline, and semantics preservation on benchmarks and random graphs. *)

let eval_outputs ?black_box g ~iterations ~inputs =
  let trace = Ir.Eval.run ?black_box g ~iterations ~inputs in
  Array.init iterations (fun i ->
      List.map snd (Ir.Eval.outputs_of g trace ~iter:i))

let inputs_fn ~iter ~name =
  Int64.of_int ((Hashtbl.hash (name, iter) land 0xffff) + iter)

let check_equiv ?black_box name g g' =
  let a = eval_outputs ?black_box g ~iterations:6 ~inputs:inputs_fn in
  let b = eval_outputs ?black_box g' ~iterations:6 ~inputs:inputs_fn in
  for i = 0 to 5 do
    if a.(i) <> b.(i) then
      Alcotest.failf "%s: outputs diverge at iteration %d" name i
  done

let test_dead_code () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let used = Ir.Builder.not_ b x in
  let _dead1 = Ir.Builder.xor_ b x x in
  let _dead2 = Ir.Builder.add b x x in
  Ir.Builder.output b used;
  let g = Ir.Builder.finish b in
  let g', removed = Opt.dead_code g in
  Alcotest.(check int) "removed two" 2 removed;
  Alcotest.(check int) "two nodes left" 2 (Ir.Cdfg.num_nodes g');
  check_equiv "dce" g g'

let test_fold_full_const () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let c1 = Ir.Builder.const b ~width:8 5L in
  let c2 = Ir.Builder.const b ~width:8 3L in
  let s = Ir.Builder.add b c1 c2 in
  Ir.Builder.output b (Ir.Builder.xor_ b x s);
  let g = Ir.Builder.finish b in
  let g', _ = Opt.simplify g in
  (* the add vanished: graph is input, const 8, xor *)
  Alcotest.(check int) "constant add folded" 3 (Ir.Cdfg.num_nodes g');
  check_equiv "full const" g g'

let test_fold_identities () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let zero = Ir.Builder.const b ~width:8 0L in
  let ones = Ir.Builder.const b ~width:8 0xffL in
  let a = Ir.Builder.xor_ b x zero in (* = x *)
  let b2 = Ir.Builder.and_ b a ones in (* = x *)
  let c = Ir.Builder.or_ b b2 zero in (* = x *)
  let d = Ir.Builder.add b c zero in (* = x *)
  let e = Ir.Builder.not_ b (Ir.Builder.not_ b d) in (* = x *)
  Ir.Builder.output b e;
  let g = Ir.Builder.finish b in
  let g', stats = Opt.simplify g in
  Alcotest.(check int) "all identities collapse to the input" 1
    (Ir.Cdfg.num_nodes g');
  Alcotest.(check bool) "stats counted" true (stats.Opt.folded >= 5);
  check_equiv "identities" g g'

let test_fold_self_xor () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let z = Ir.Builder.xor_ b x x in
  Ir.Builder.output b (Ir.Builder.or_ b z x);
  let g = Ir.Builder.finish b in
  let g', _ = Opt.simplify g in
  Alcotest.(check int) "x^x|x = x" 1 (Ir.Cdfg.num_nodes g');
  check_equiv "self xor" g g'

let test_fold_mux_const_cond () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let y = Ir.Builder.input b ~width:8 "y" in
  let one = Ir.Builder.const b ~width:1 1L in
  let m = Ir.Builder.mux b ~cond:one x y in
  Ir.Builder.output b m;
  Ir.Builder.output b y;
  let g = Ir.Builder.finish b in
  let g', _ = Opt.simplify g in
  Alcotest.(check int) "mux gone" 2 (Ir.Cdfg.num_nodes g');
  check_equiv "mux const" g g'

let test_cse_merges () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let y = Ir.Builder.input b ~width:8 "y" in
  let a1 = Ir.Builder.xor_ b x y in
  let a2 = Ir.Builder.xor_ b x y in
  let out = Ir.Builder.and_ b a1 a2 in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let g', merged = Opt.cse g in
  Alcotest.(check int) "one xor merged" 1 merged;
  check_equiv "cse" g g';
  (* and the and-of-equal then simplifies away *)
  let g'', _ = Opt.simplify g in
  Alcotest.(check int) "and(x,x) collapses too" 3 (Ir.Cdfg.num_nodes g'')

let test_cse_never_merges_black_boxes () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let r1 = Ir.Builder.black_box b ~kind:"f" ~resource:"bram_port" ~width:8 [ x ] in
  let r2 = Ir.Builder.black_box b ~kind:"f" ~resource:"bram_port" ~width:8 [ x ] in
  Ir.Builder.output b (Ir.Builder.xor_ b r1 r2);
  let g = Ir.Builder.finish b in
  let _, merged = Opt.cse g in
  Alcotest.(check int) "black boxes untouched" 0 merged

let test_recurrence_preserved () =
  (* simplify must not break loop-carried semantics *)
  let g = Benchmarks.Mt.build ~width:16 () in
  let g', _ = Opt.simplify g in
  check_equiv "mt" g g';
  match Ir.Cdfg.validate g' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid after simplify: %s" e

let test_benchmarks_preserved () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let g', _ = Opt.simplify g in
      (match Ir.Cdfg.validate g' with
      | Ok () -> ()
      | Error err -> Alcotest.failf "%s: %s" e.name err);
      let bb = Option.value e.black_box ~default:(fun ~kind:_ _ -> 0L) in
      check_equiv ~black_box:bb e.name g g';
      Alcotest.(check bool)
        (e.name ^ ": no growth")
        true
        (Ir.Cdfg.num_nodes g' <= Ir.Cdfg.num_nodes g))
    Benchmarks.Registry.all

let test_simplify_idempotent () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let g1, _ = Opt.simplify g in
      let g2, stats = Opt.simplify g1 in
      Alcotest.(check int)
        (e.name ^ ": second simplify is a no-op")
        (Ir.Cdfg.num_nodes g1) (Ir.Cdfg.num_nodes g2);
      Alcotest.(check int) (e.name ^ ": nothing folded") 0 stats.Opt.folded;
      Alcotest.(check int) (e.name ^ ": nothing merged") 0 stats.Opt.merged)
    Benchmarks.Registry.all

let test_simplified_graphs_still_synthesize () =
  (* optimizer output feeds the flows end to end *)
  let e = Benchmarks.Registry.find "GFMUL" in
  let g, _ = Opt.simplify (e.build ()) in
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  let setup =
    { (Mams.Flow.default_setup ~device) with time_limit = 5.0 }
  in
  List.iter
    (fun m ->
      match Mams.Flow.run setup m g with
      | Ok _ -> ()
      | Error err -> Alcotest.failf "%s: %s" (Mams.Flow.method_name m) err)
    [ Mams.Flow.Hls_tool; Mams.Flow.Sdc_tool; Mams.Flow.Map_heuristic ]

let test_output_order_stable () =
  let g = Benchmarks.Cordic.build ~width:8 ~iterations:2 () in
  let g', _ = Opt.simplify g in
  Alcotest.(check int) "same output count"
    (List.length (Ir.Cdfg.outputs g))
    (List.length (Ir.Cdfg.outputs g'))

let () =
  Alcotest.run "opt"
    [
      ( "passes",
        [
          Alcotest.test_case "dead code" `Quick test_dead_code;
          Alcotest.test_case "full const fold" `Quick test_fold_full_const;
          Alcotest.test_case "identities" `Quick test_fold_identities;
          Alcotest.test_case "self xor" `Quick test_fold_self_xor;
          Alcotest.test_case "mux const cond" `Quick test_fold_mux_const_cond;
          Alcotest.test_case "cse" `Quick test_cse_merges;
          Alcotest.test_case "cse skips bbs" `Quick test_cse_never_merges_black_boxes;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "recurrence" `Quick test_recurrence_preserved;
          Alcotest.test_case "all benchmarks" `Quick test_benchmarks_preserved;
          Alcotest.test_case "idempotent" `Quick test_simplify_idempotent;
          Alcotest.test_case "feeds the flows" `Quick
            test_simplified_graphs_still_synthesize;
          Alcotest.test_case "output order" `Quick test_output_order_stable;
        ] );
    ]
