(* Cross-validation of the two MILP formulations: the default compact
   lifetime form and the paper-exact Eq. 2-15 form must agree on optimal
   register counts, and both must produce schedules that pass the
   independent verifier. *)

let device = Fpga.Device.make ~t_clk:10.0 ()
let delays = Fpga.Delays.default

let base_cfg ?(ii = 1) ?(max_latency = 6) ?(mapped = false) () :
    Mams.Formulation.config =
  {
    device;
    delays;
    resources = Fpga.Resource.unlimited;
    ii;
    max_latency;
    alpha = 0.5;
    beta = 0.5;
    cut_delay =
      (if mapped then Mams.Formulation.mapped_delay ~device ~delays
       else Mams.Formulation.additive_delay ~delays);
  }

let small_recurrence () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:1 in
  let t1 = Ir.Builder.xor_ b x cell in
  let t2 = Ir.Builder.not_ b t1 in
  Ir.Builder.drive b ~cell t1;
  Ir.Builder.output b t2;
  Ir.Builder.finish b

let deep_chain () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let y = Ir.Builder.input b ~width:4 "y" in
  let rec chain i acc =
    if i = 0 then acc else chain (i - 1) (Ir.Builder.xor_ b acc y)
  in
  Ir.Builder.output b (chain 9 x);
  Ir.Builder.finish b

let solve_compact cfg g cuts =
  let f = Mams.Formulation.build cfg g cuts in
  let r = Lp.Milp.solve ~time_limit:60.0 (Mams.Formulation.model f) in
  Alcotest.(check bool) "compact optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  (Mams.Formulation.extract f r, r)

let solve_exact cfg g cuts =
  let f = Mams.Formulation_exact.build cfg g cuts in
  let r = Lp.Milp.solve ~time_limit:120.0 (Mams.Formulation_exact.model f) in
  Alcotest.(check bool) "exact optimal" true (r.Lp.Milp.status = Lp.Milp.Optimal);
  (Mams.Formulation_exact.extract f r, r, f)

let ffs g (sched, cover) =
  Sched.Qor.ff_bits g cover sched ~device ~delays

let verify g (sched, cover) =
  let ctx : Sched.Verify.context =
    { device; delays; resources = Fpga.Resource.unlimited }
  in
  match Sched.Verify.check ctx g cover sched with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "illegal: %s" (String.concat "; " msgs)

let check_equal_ffs name g =
  let cuts = Cuts.trivial_only g in
  let cfg = base_cfg () in
  let compact, _ = solve_compact cfg g cuts in
  let exact, _, _ = solve_exact cfg g cuts in
  verify g compact;
  verify g exact;
  Alcotest.(check int) (name ^ ": same optimal FF count") (ffs g exact)
    (ffs g compact)

let test_equiv_recurrence () = check_equal_ffs "recurrence" (small_recurrence ())
let test_equiv_chain () = check_equal_ffs "chain" (deep_chain ())

let test_equiv_rs_kernel () =
  check_equal_ffs "rs kernel" (Benchmarks.Rs.kernel ~width:2 ())

let test_exact_map_legal () =
  (* The paper-exact mapping-aware MILP on the Figure 1 kernel. Its LP
     relaxation is weak (the A1 ablation), so accept the best feasible
     solution within the budget — the paper's own protocol. *)
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let cuts = Cuts.enumerate ~k:4 g in
  let cfg = base_cfg ~mapped:true () in
  let f0 = Mams.Formulation_exact.build cfg g cuts in
  let r0 =
    Lp.Milp.solve ~time_limit:30.0 (Mams.Formulation_exact.model f0)
  in
  Alcotest.(check bool) "found a solution" true
    (match r0.Lp.Milp.status with
    | Lp.Milp.Optimal | Lp.Milp.Feasible -> true
    | Lp.Milp.Infeasible | Lp.Milp.Unbounded | Lp.Milp.Unknown -> false);
  let exact, r, f = (Mams.Formulation_exact.extract f0 r0, r0, f0) in
  verify g exact;
  let lut_bits = ref 0 and reg_bits = ref 0 in
  Mams.Formulation_exact.objective_breakdown f r ~lut_bits ~reg_bits;
  Alcotest.(check bool) "some LUT bits" true (!lut_bits > 0);
  (* the recurrence register survives: at least 2 live bit-cycles *)
  Alcotest.(check bool) "register bits counted" true (!reg_bits >= 2)

let test_exact_is_larger () =
  (* Ablation A1 sanity: the exact formulation is strictly bigger. *)
  let g = Benchmarks.Rs.kernel ~width:4 () in
  let cuts = Cuts.enumerate ~k:4 g in
  let cfg = base_cfg ~mapped:true () in
  let fc = Mams.Formulation.build cfg g cuts in
  let fe = Mams.Formulation_exact.build cfg g cuts in
  let vars m = Lp.Model.num_vars m and rows m = Lp.Model.num_constraints m in
  Alcotest.(check bool) "more variables" true
    (vars (Mams.Formulation_exact.model fe) > vars (Mams.Formulation.model fc));
  Alcotest.(check bool) "more constraints" true
    (rows (Mams.Formulation_exact.model fe) > rows (Mams.Formulation.model fc))

let test_incumbents_feasible_everywhere () =
  (* The warm-start construction must be accepted by Model.check for every
     benchmark: this guards the whole constraint system against drift. *)
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      match
        Sched.Heuristic.schedule ~device ~delays ~resources:e.resources ~ii:1 g
      with
      | Error err -> Alcotest.failf "%s: %a" e.name Sched.Heuristic.pp_error err
      | Ok sched ->
          let cuts = Cuts.trivial_only g in
          let cover = Sched.Cover.all_trivial g cuts in
          let cfg =
            {
              (base_cfg ~max_latency:(Sched.Schedule.latency sched) ()) with
              device;
              resources = e.resources;
            }
          in
          let f = Mams.Formulation.build cfg g cuts in
          let x = Mams.Formulation.incumbent_of_schedule f sched cover in
          (match
             Lp.Model.check (Mams.Formulation.model f)
               ~values:(fun v -> x.(Lp.Model.var_index v))
               ()
           with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: incumbent rejected: %s" e.name msg))
    Benchmarks.Registry.all

let test_branch_priorities_shape () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let cuts = Cuts.enumerate ~k:4 g in
  let f = Mams.Formulation.build (base_cfg ~mapped:true ()) g cuts in
  let p = Mams.Formulation.branch_priorities f in
  Alcotest.(check int) "covers all variables"
    (Lp.Model.num_vars (Mams.Formulation.model f))
    (Array.length p);
  Alcotest.(check bool) "has prioritized classes" true
    (Array.exists (fun x -> x = 3) p && Array.exists (fun x -> x = 1) p)

let () =
  Alcotest.run "formulation"
    [
      ( "equivalence",
        [
          Alcotest.test_case "recurrence" `Quick test_equiv_recurrence;
          Alcotest.test_case "deep chain" `Slow test_equiv_chain;
          Alcotest.test_case "rs kernel" `Slow test_equiv_rs_kernel;
        ] );
      ( "exact",
        [
          Alcotest.test_case "map legal" `Slow test_exact_map_legal;
          Alcotest.test_case "exact larger" `Quick test_exact_is_larger;
        ] );
      ( "compact",
        [
          Alcotest.test_case "incumbents feasible" `Quick
            test_incumbents_feasible_everywhere;
          Alcotest.test_case "branch priorities" `Quick
            test_branch_priorities_shape;
        ] );
    ]
