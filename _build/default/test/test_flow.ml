(* End-to-end tests of the three flows (HLS-Tool / MILP-base / MILP-map) on
   small kernels, including the paper's Figure 1 scenario. *)

let fig1_setup () =
  (* Figure 1: 4-LUT device, 5 ns clock, and — per the caption — "each
     logic operation or LUT incurs a 2ns delay": characterized delays are
     2 ns per op, which splits the kernel into three stages as in
     Fig. 1(a). *)
  let device = Fpga.Device.figure1 in
  let delays =
    Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ()
  in
  { (Mams.Flow.default_setup ~device) with delays; time_limit = 30.0 }

let get = function
  | Ok r -> r
  | Error e -> Alcotest.failf "flow failed: %s" e

let test_fig1_hls_tool () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let r = get (Mams.Flow.run (fig1_setup ()) Mams.Flow.Hls_tool g) in
  (* Additive delays force the prep -> xor -> cmp -> mux chain across at
     least three stages, as in Fig. 1(a). *)
  Alcotest.(check bool) "three stages (suboptimal)" true
    (Sched.Schedule.latency r.schedule >= 2);
  Alcotest.(check bool) "has pipeline registers" true (r.qor.ffs > 2)

let test_fig1_milp_map_optimal () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let r = get (Mams.Flow.run (fig1_setup ()) Mams.Flow.Milp_map g) in
  (* Paper: the optimal schedule is a single combinational stage with only
     a couple of LUT cones (here: the state xor and the output cone). *)
  Alcotest.(check int) "single stage" 0 (Sched.Schedule.latency r.schedule);
  Alcotest.(check bool) "at most 4 LUTs" true (r.qor.luts <= 4);
  (* Only the recurrence register remains: 2 bits. *)
  Alcotest.(check int) "recurrence register only" 2 r.qor.ffs

let test_fig1_map_beats_hls () =
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let setup = fig1_setup () in
  let hls = get (Mams.Flow.run setup Mams.Flow.Hls_tool g) in
  let map = get (Mams.Flow.run setup Mams.Flow.Milp_map g) in
  Alcotest.(check bool) "map needs fewer FFs" true (map.qor.ffs < hls.qor.ffs);
  Alcotest.(check bool) "map needs no more LUTs" true
    (map.qor.luts <= hls.qor.luts)

let test_all_flows_verified_rs8 () =
  let g = Benchmarks.Rs.kernel ~width:8 () in
  let setup =
    { (Mams.Flow.default_setup ~device:Fpga.Device.default) with
      time_limit = 30.0 }
  in
  List.iter
    (fun (m, r) ->
      match r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: %s" (Mams.Flow.method_name m) e)
    (Mams.Flow.run_all setup g)

let test_milp_base_no_worse_ffs () =
  (* MILP-base minimizes registers exactly, so it never uses more FFs than
     the heuristic under the same delay model. *)
  let g = Benchmarks.Rs.full ~width:4 ~taps:2 () in
  let setup =
    { (Mams.Flow.default_setup ~device:Fpga.Device.default) with
      time_limit = 60.0 }
  in
  let hls = get (Mams.Flow.run setup Mams.Flow.Hls_tool g) in
  let base = get (Mams.Flow.run setup Mams.Flow.Milp_base g) in
  Alcotest.(check bool) "base FFs <= hls FFs" true
    (base.qor.ffs <= hls.qor.ffs)

let test_milp_map_dominates () =
  let g = Benchmarks.Rs.full ~width:4 ~taps:2 () in
  let setup =
    { (Mams.Flow.default_setup ~device:Fpga.Device.default) with
      time_limit = 60.0 }
  in
  let hls = get (Mams.Flow.run setup Mams.Flow.Hls_tool g) in
  let map = get (Mams.Flow.run setup Mams.Flow.Milp_map g) in
  Alcotest.(check bool) "map FFs <= hls FFs" true (map.qor.ffs <= hls.qor.ffs)

let test_xor_tree_single_stage () =
  (* An 8-input xor tree: additive delays split it, mapping collapses it. *)
  let b = Ir.Builder.create () in
  let leaves =
    List.init 8 (fun i -> Ir.Builder.input b ~width:4 (Printf.sprintf "x%d" i))
  in
  let out = Ir.Builder.reduce b (fun b x y -> Ir.Builder.xor_ b x y) leaves in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let device = Fpga.Device.make ~k:4 ~lut_delay:2.0 ~t_clk:5.0 () in
  let delays = Fpga.Delays.make ~logic:2.0 () in
  let setup =
    { (Mams.Flow.default_setup ~device) with delays; time_limit = 30.0 }
  in
  let hls = get (Mams.Flow.run setup Mams.Flow.Hls_tool g) in
  let map = get (Mams.Flow.run setup Mams.Flow.Milp_map g) in
  (* additive: 3 levels x 2ns = 6ns > 5ns -> at least 2 stages *)
  Alcotest.(check bool) "hls pipelines" true
    (Sched.Schedule.latency hls.schedule >= 1);
  Alcotest.(check bool) "hls uses registers" true (hls.qor.ffs > 0);
  (* mapped: 8 inputs x 4 bits via K=4 -> 2 LUT levels = 4ns, one stage *)
  Alcotest.(check int) "map single stage" 0 (Sched.Schedule.latency map.schedule);
  Alcotest.(check int) "map zero FFs" 0 map.qor.ffs

let test_resource_constrained_bb () =
  (* Two bram reads, one port: II=1 impossible to satisfy Eq. 14 in the
     same phase; at II=2 they must land in different phases. *)
  let b = Ir.Builder.create () in
  let a = Ir.Builder.input b ~width:8 "a" in
  let r1 = Ir.Builder.black_box b ~kind:"load" ~resource:"bram_port" ~width:8 [ a ] in
  let r2 = Ir.Builder.black_box b ~kind:"load" ~resource:"bram_port" ~width:8 [ r1 ] in
  let o = Ir.Builder.xor_ b r1 r2 in
  Ir.Builder.output b o;
  let g = Ir.Builder.finish b in
  let setup =
    { (Mams.Flow.default_setup ~device:Fpga.Device.default) with
      resources = Fpga.Resource.of_list [ ("bram_port", 1) ];
      ii = 2;
      time_limit = 30.0 }
  in
  List.iter
    (fun (m, r) ->
      match r with
      | Ok res ->
          let phases =
            List.filter_map
              (fun v ->
                match Ir.Cdfg.op g v with
                | Ir.Op.Black_box _ -> Some (Sched.Schedule.phase res.Mams.Flow.schedule v)
                | _ -> None)
              (List.init (Ir.Cdfg.num_nodes g) Fun.id)
          in
          Alcotest.(check bool)
            (Mams.Flow.method_name m ^ ": distinct phases")
            true
            (List.sort_uniq compare phases = List.sort compare phases)
      | Error e -> Alcotest.failf "%s: %s" (Mams.Flow.method_name m) e)
    (Mams.Flow.run_all setup g)

let () =
  Alcotest.run "flow"
    [
      ( "figure1",
        [
          Alcotest.test_case "hls tool pipelines" `Quick test_fig1_hls_tool;
          Alcotest.test_case "milp-map optimal" `Quick test_fig1_milp_map_optimal;
          Alcotest.test_case "map beats hls" `Quick test_fig1_map_beats_hls;
        ] );
      ( "flows",
        [
          Alcotest.test_case "all verified (rs8)" `Quick test_all_flows_verified_rs8;
          Alcotest.test_case "base no worse FFs" `Slow test_milp_base_no_worse_ffs;
          Alcotest.test_case "map dominates" `Slow test_milp_map_dominates;
          Alcotest.test_case "xor tree collapses" `Quick test_xor_tree_single_stage;
          Alcotest.test_case "bb resources" `Slow test_resource_constrained_bb;
        ] );
    ]
