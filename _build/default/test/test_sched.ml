(* Tests for the scheduling layer: the heuristic baseline, schedule
   verification, liveness-based FF counting, timing recomputation, and the
   map-first scheduler. *)

let device = Fpga.Device.make ~t_clk:10.0 ()
let delays = Fpga.Delays.default
let resources = Fpga.Resource.unlimited

let ctx : Sched.Verify.context = { device; delays; resources }

let heuristic ?(ii = 1) g =
  match Sched.Heuristic.schedule ~device ~delays ~resources ~ii g with
  | Ok s -> s
  | Error e -> Alcotest.failf "heuristic: %a" Sched.Heuristic.pp_error e

let trivial_cover g = Sched.Cover.all_trivial g (Cuts.trivial_only g)

let xor_chain n =
  let b = Ir.Builder.create () in
  let x0 = Ir.Builder.input b ~width:8 "x0" in
  let rec go i acc =
    if i > n then acc
    else
      let xi = Ir.Builder.input b ~width:8 (Printf.sprintf "x%d" i) in
      go (i + 1) (Ir.Builder.xor_ b acc xi)
  in
  Ir.Builder.output b (go 1 x0);
  Ir.Builder.finish b

let test_heuristic_chains_within_cycle () =
  (* 4 chained xors at 1.37ns = 5.5ns fit a 10ns cycle. *)
  let g = xor_chain 4 in
  let s = heuristic g in
  Alcotest.(check int) "single cycle" 0 (Sched.Schedule.latency s)

let test_heuristic_splits_long_chain () =
  (* 8 chained xors = 11ns > 10ns: must pipeline. *)
  let g = xor_chain 8 in
  let s = heuristic g in
  Alcotest.(check bool) "pipelined" true (Sched.Schedule.latency s >= 1);
  (* and the result is legal *)
  Sched.Verify.check_exn ctx g (trivial_cover g) s

let test_heuristic_verifies_on_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      let ctx : Sched.Verify.context =
        { device; delays; resources = e.resources }
      in
      match
        Sched.Heuristic.schedule ~device ~delays ~resources:e.resources ~ii:1 g
      with
      | Error err ->
          Alcotest.failf "%s: %a" e.name Sched.Heuristic.pp_error err
      | Ok s -> (
          let cover = trivial_cover g in
          match Sched.Verify.check ctx g cover s with
          | Ok () -> ()
          | Error msgs ->
              Alcotest.failf "%s: %s" e.name (String.concat "; " msgs)))
    Benchmarks.Registry.all

let test_min_ii_recurrence () =
  (* A recurrence whose body takes ~2 cycles forces II >= 2 when the
     distance is 1. 8 chained xors = 11ns -> latency 2 cycles. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let cell = Ir.Builder.feedback b ~width:8 ~init:0L ~dist:1 in
  let rec chain i acc =
    if i = 0 then acc else chain (i - 1) (Ir.Builder.xor_ b acc x)
  in
  let deep = chain 8 cell in
  Ir.Builder.drive b ~cell deep;
  Ir.Builder.output b deep;
  let g = Ir.Builder.finish b in
  let mii = Sched.Heuristic.min_ii ~delays ~device ~resources g in
  Alcotest.(check bool) "MII > 1" true (mii > 1);
  (match Sched.Heuristic.schedule ~device ~delays ~resources ~ii:1 g with
  | Error (Sched.Heuristic.Recurrence_too_tight _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Sched.Heuristic.pp_error e
  | Ok _ -> Alcotest.fail "II=1 should be infeasible");
  match Sched.Heuristic.schedule ~device ~delays ~resources ~ii:mii g with
  | Ok s -> Sched.Verify.check_exn { ctx with device } g (trivial_cover g) s
  | Error e -> Alcotest.failf "at MII: %a" Sched.Heuristic.pp_error e

let test_resource_res_mii () =
  (* 4 loads on 2 ports: ResMII = 2. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let loads =
    List.init 4 (fun _ ->
        Ir.Builder.black_box b ~kind:"load" ~resource:"bram_port" ~width:8 [ x ])
  in
  Ir.Builder.output b (Benchmarks.Bench_util.xor_reduce b loads);
  let g = Ir.Builder.finish b in
  let resources = Fpga.Resource.of_list [ ("bram_port", 2) ] in
  Alcotest.(check int) "ResMII" 2
    (Sched.Heuristic.min_ii ~delays ~device ~resources g);
  match Sched.Heuristic.schedule ~device ~delays ~resources ~ii:2 g with
  | Ok s ->
      Sched.Verify.check_exn { ctx with resources } g (trivial_cover g) s
  | Error e -> Alcotest.failf "at ResMII: %a" Sched.Heuristic.pp_error e

(* --- verification catches bad schedules ------------------------------- *)

let test_verify_catches_dependence_violation () =
  let g = xor_chain 2 in
  let s = heuristic g in
  (* corrupt: move the final xor one cycle before its operand *)
  let last = Ir.Cdfg.num_nodes g - 1 in
  let bad_cycle = Array.copy s.Sched.Schedule.cycle in
  bad_cycle.(last) <- 0;
  let pred = (Ir.Cdfg.preds g last).(0).Ir.Cdfg.src in
  bad_cycle.(pred) <- 1;
  let bad =
    Sched.Schedule.make ~ii:1 ~cycle:bad_cycle ~start:s.Sched.Schedule.start
  in
  match Sched.Verify.check ctx g (trivial_cover g) bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verification accepted a broken schedule"

let test_verify_catches_overfull_cycle () =
  let g = xor_chain 8 in
  (* force everything into cycle 0 with zero starts: chaining violated *)
  let n = Ir.Cdfg.num_nodes g in
  let s =
    Sched.Schedule.make ~ii:1 ~cycle:(Array.make n 0)
      ~start:(Array.make n 0.0)
  in
  match Sched.Verify.check ctx g (trivial_cover g) s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verification accepted an overfull cycle"

let test_verify_catches_same_cycle_register_read () =
  (* A separate reader of the recurrence register scheduled before the
     producer has finished writing it. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:4 "x" in
  let cell = Ir.Builder.feedback b ~width:4 ~init:0L ~dist:1 in
  let nxt = Ir.Builder.xor_ b x cell in
  Ir.Builder.drive b ~cell nxt;
  let reader = Ir.Builder.not_ b cell in
  Ir.Builder.output b nxt;
  Ir.Builder.output b reader;
  let g = Ir.Builder.finish b in
  (* ids: x=0 nxt=1 reader=2. Producer nxt at cycle 2, reader at cycle 0:
     2 + 1 > 0 + II*1 — the register is read before it was ever written. *)
  let n = Ir.Cdfg.num_nodes g in
  let cycle = Array.make n 0 in
  cycle.(1) <- 2;
  let s = Sched.Schedule.make ~ii:1 ~cycle ~start:(Array.make n 0.0) in
  match Sched.Verify.check ctx g (trivial_cover g) s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verification accepted a late recurrence write"

(* --- FF counting ------------------------------------------------------ *)

let test_ff_counts_lifetimes () =
  (* x0 used in cycle 0 and again (via the chain) across the boundary. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let y = Ir.Builder.input b ~width:8 "y" in
  let n = Ir.Builder.xor_ b x y in
  (* artificially deep chain so n crosses a cycle *)
  let rec chain i acc =
    if i = 0 then acc else chain (i - 1) (Ir.Builder.xor_ b acc y)
  in
  let out = chain 8 n in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let s = heuristic g in
  Alcotest.(check bool) "pipelined" true (Sched.Schedule.latency s >= 1);
  let cover = trivial_cover g in
  let q = Sched.Qor.evaluate ~device ~delays g cover s in
  (* y is live into the second cycle: at least its 8 bits are registered *)
  Alcotest.(check bool) "ff > 0" true (q.Sched.Qor.ffs >= 8)

let test_ff_zero_single_cycle () =
  let g = xor_chain 3 in
  let s = heuristic g in
  let q = Sched.Qor.evaluate ~device ~delays g (trivial_cover g) s in
  Alcotest.(check int) "no registers in a single stage" 0 q.Sched.Qor.ffs

let test_ff_recurrence_register () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let cell = Ir.Builder.feedback b ~width:8 ~init:0L ~dist:1 in
  let nxt = Ir.Builder.xor_ b x cell in
  Ir.Builder.drive b ~cell nxt;
  Ir.Builder.output b nxt;
  let g = Ir.Builder.finish b in
  let s = heuristic g in
  let q = Sched.Qor.evaluate ~device ~delays g (trivial_cover g) s in
  Alcotest.(check int) "one 8-bit state register" 8 q.Sched.Qor.ffs

let test_const_never_registered () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let c = Ir.Builder.const b ~width:8 0x55L in
  let rec chain i acc =
    if i = 0 then acc else chain (i - 1) (Ir.Builder.xor_ b acc c)
  in
  Ir.Builder.output b (chain 9 x);
  let g = Ir.Builder.finish b in
  let s = heuristic g in
  Alcotest.(check bool) "pipelined" true (Sched.Schedule.latency s >= 1);
  let q = Sched.Qor.evaluate ~device ~delays g (trivial_cover g) s in
  (* only x and intermediates, never the constant *)
  let n = Ir.Cdfg.num_nodes g in
  Alcotest.(check bool) "bounded by non-const values" true
    (q.Sched.Qor.ffs <= 8 * n)

let test_regs_per_phase_sums_to_ff () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      match
        Sched.Heuristic.schedule ~device ~delays ~resources:e.resources ~ii:1 g
      with
      | Error _ -> ()
      | Ok s ->
          let cover = trivial_cover g in
          let per = Sched.Qor.regs_per_phase g cover s ~device ~delays in
          Alcotest.(check int)
            (e.name ^ ": Eq.13 sums to FF count")
            (Sched.Qor.ff_bits g cover s ~device ~delays)
            (Array.fold_left ( + ) 0 per))
    Benchmarks.Registry.all

let test_regs_per_phase_ii2 () =
  (* One value alive for 2 cycles at II=2 occupies both phases once. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let y = Ir.Builder.input b ~width:8 "y" in
  let t = Ir.Builder.xor_ b x y in
  let rec chain i acc =
    if i = 0 then acc else chain (i - 1) (Ir.Builder.xor_ b acc y)
  in
  let far = chain 14 t in
  Ir.Builder.output b (Ir.Builder.xor_ b far t);
  let g = Ir.Builder.finish b in
  match
    Sched.Heuristic.schedule ~device ~delays ~resources ~ii:2 g
  with
  | Error e -> Alcotest.failf "heuristic: %a" Sched.Heuristic.pp_error e
  | Ok s ->
      let cover = trivial_cover g in
      let per = Sched.Qor.regs_per_phase g cover s ~device ~delays in
      Alcotest.(check int) "two phases" 2 (Array.length per);
      Alcotest.(check int) "sums to ff"
        (Sched.Qor.ff_bits g cover s ~device ~delays)
        (Array.fold_left ( + ) 0 per);
      (* t is alive across the long chain, so both phases hold some bits *)
      Alcotest.(check bool) "both phases populated" true
        (per.(0) > 0 && per.(1) > 0)

(* --- timing ----------------------------------------------------------- *)

let test_recompute_starts_asap () =
  let g = xor_chain 3 in
  let s = heuristic g in
  let cover = trivial_cover g in
  let s' = Sched.Timing.recompute_starts ~device ~delays g cover s in
  (* first xor starts at 0, later xors start no earlier than their preds *)
  Ir.Cdfg.iter
    (fun nd ->
      Array.iter
        (fun (e : Ir.Cdfg.edge) ->
          if
            e.dist = 0
            && s'.Sched.Schedule.cycle.(e.src) = s'.Sched.Schedule.cycle.(nd.id)
          then
            Alcotest.(check bool) "monotone starts" true
              (s'.Sched.Schedule.start.(e.src)
              <= s'.Sched.Schedule.start.(nd.id) +. 1e-9))
        nd.preds)
    g;
  let cp = Sched.Timing.achieved_cp ~device ~delays g cover s' in
  Alcotest.(check bool) "cp within period" true
    (cp <= Fpga.Device.usable_period device +. 1e-9)

(* --- map-first scheduler ---------------------------------------------- *)

let test_mapsched_beats_hls_on_tree () =
  let g = xor_chain 8 in
  let cuts = Cuts.enumerate ~k:4 g in
  let cover = Techmap.map_global ~device ~delays ~cuts g in
  match Sched.Mapsched.schedule ~device ~delays ~resources ~ii:1 g cover with
  | Error e -> Alcotest.failf "mapsched: %a" Sched.Heuristic.pp_error e
  | Ok s ->
      Sched.Verify.check_exn ctx g cover s;
      let hls = heuristic g in
      Alcotest.(check bool) "no deeper than additive" true
        (Sched.Schedule.latency s <= Sched.Schedule.latency hls)

let test_mapsched_verifies_on_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      let cuts = Cuts.enumerate ~k:4 g in
      let cover = Techmap.map_global ~device ~delays ~cuts g in
      match
        Sched.Mapsched.schedule ~device ~delays ~resources:e.resources ~ii:1 g
          cover
      with
      | Error err -> Alcotest.failf "%s: %a" e.name Sched.Heuristic.pp_error err
      | Ok s -> (
          let ctx : Sched.Verify.context =
            { device; delays; resources = e.resources }
          in
          match Sched.Verify.check ctx g cover s with
          | Ok () -> ()
          | Error msgs ->
              Alcotest.failf "%s: %s" e.name (String.concat "; " msgs)))
    Benchmarks.Registry.all

let test_multicycle_black_box () =
  (* A black box slower than the clock period (23 ns at 10 ns) pipelines
     over 2 extra cycles; its consumer must wait for the result. *)
  let slow_delays = Fpga.Delays.make ~black_box:[ ("slowrom", 23.0) ] () in
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let r =
    Ir.Builder.black_box b ~kind:"lookup" ~resource:"slowrom" ~width:8 [ x ]
  in
  let out = Ir.Builder.not_ b r in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  Alcotest.(check int) "bb latency" 2
    (Sched.Heuristic.op_latency ~device ~delays:slow_delays g 1);
  match
    Sched.Heuristic.schedule ~device ~delays:slow_delays ~resources ~ii:1 g
  with
  | Error e -> Alcotest.failf "heuristic: %a" Sched.Heuristic.pp_error e
  | Ok s ->
      Alcotest.(check bool) "consumer waits for the result" true
        (s.Sched.Schedule.cycle.(2) >= s.Sched.Schedule.cycle.(1) + 2);
      let cover = trivial_cover g in
      let ctx : Sched.Verify.context =
        { device; delays = slow_delays; resources }
      in
      Sched.Verify.check_exn ctx g cover s;
      (* x feeds the black box only at cycle 0: no input registers; the
         result is consumed the cycle it appears: no output registers *)
      let q = Sched.Qor.evaluate ~device ~delays:slow_delays g cover s in
      Alcotest.(check int) "no spurious registers" 0 q.Sched.Qor.ffs

let test_multicycle_bb_through_milp () =
  let slow_delays = Fpga.Delays.make ~black_box:[ ("slowrom", 23.0) ] () in
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let r =
    Ir.Builder.black_box b ~kind:"lookup" ~resource:"slowrom" ~width:8 [ x ]
  in
  let out = Ir.Builder.xor_ b r x in
  Ir.Builder.output b out;
  let g = Ir.Builder.finish b in
  let setup =
    { (Mams.Flow.default_setup ~device) with
      delays = slow_delays;
      time_limit = 15.0 }
  in
  List.iter
    (fun m ->
      match Mams.Flow.run setup m g with
      | Ok r ->
          (* x is alive until the xor fires, >= 2 cycles after arrival *)
          Alcotest.(check bool)
            (Mams.Flow.method_name m ^ ": input registered across bb latency")
            true
            (r.Mams.Flow.qor.Sched.Qor.ffs >= 16)
      | Error e -> Alcotest.failf "%s: %s" (Mams.Flow.method_name m) e)
    [ Mams.Flow.Hls_tool; Mams.Flow.Milp_base; Mams.Flow.Milp_map ]

(* --- SDC scheduler ----------------------------------------------------- *)

let test_sdc_verifies_on_benchmarks () =
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      match
        Sched.Sdc.schedule ~device ~delays ~resources:e.resources ~ii:1 g
      with
      | Error err -> Alcotest.failf "%s: %a" e.name Sched.Heuristic.pp_error err
      | Ok s -> (
          let ctx : Sched.Verify.context =
            { device; delays; resources = e.resources }
          in
          match Sched.Verify.check ctx g (trivial_cover g) s with
          | Ok () -> ()
          | Error msgs ->
              Alcotest.failf "%s: %s" e.name (String.concat "; " msgs)))
    Benchmarks.Registry.all

let test_sdc_minimizes_registers () =
  (* SDC optimizes lifetimes exactly under the additive model, so it never
     needs more FFs than the list-scheduling heuristic. *)
  List.iter
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      let device = Fpga.Device.make ~t_clk:e.t_clk () in
      match
        ( Sched.Sdc.schedule ~device ~delays ~resources:e.resources ~ii:1 g,
          Sched.Heuristic.schedule ~device ~delays ~resources:e.resources
            ~ii:1 g )
      with
      | Ok sdc, Ok hls ->
          let cover = trivial_cover g in
          let ff s = Sched.Qor.ff_bits g cover s ~device ~delays in
          Alcotest.(check bool)
            (e.name ^ ": SDC FFs <= heuristic FFs")
            true
            (ff sdc <= ff hls)
      | _ -> Alcotest.failf "%s: scheduling failed" e.name)
    Benchmarks.Registry.all

let test_sdc_resource_conflicts () =
  (* Two loads on one port at II=2: the iterative conflict resolution must
     separate their phases. *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let r1 = Ir.Builder.black_box b ~kind:"load" ~resource:"bram_port" ~width:8 [ x ] in
  let r2 = Ir.Builder.black_box b ~kind:"load" ~resource:"bram_port" ~width:8 [ x ] in
  Ir.Builder.output b (Ir.Builder.xor_ b r1 r2);
  let g = Ir.Builder.finish b in
  let resources = Fpga.Resource.of_list [ ("bram_port", 1) ] in
  (match Sched.Sdc.schedule ~device ~delays ~resources ~ii:1 g with
  | Error (Sched.Heuristic.Resource_infeasible _) -> ()
  | Error e -> Alcotest.failf "unexpected: %a" Sched.Heuristic.pp_error e
  | Ok _ -> Alcotest.fail "II=1 with one port must be rejected");
  match Sched.Sdc.schedule ~device ~delays ~resources ~ii:2 g with
  | Error e -> Alcotest.failf "II=2: %a" Sched.Heuristic.pp_error e
  | Ok s ->
      Alcotest.(check bool) "phases differ" true
        (Sched.Schedule.phase s 1 <> Sched.Schedule.phase s 2);
      Sched.Verify.check_exn { ctx with resources } g (trivial_cover g) s

let test_sdc_recurrence_infeasible () =
  (* the same too-tight recurrence the heuristic rejects *)
  let b = Ir.Builder.create () in
  let x = Ir.Builder.input b ~width:8 "x" in
  let cell = Ir.Builder.feedback b ~width:8 ~init:0L ~dist:1 in
  let rec chain i acc =
    if i = 0 then acc else chain (i - 1) (Ir.Builder.xor_ b acc x)
  in
  let deep = chain 8 cell in
  Ir.Builder.drive b ~cell deep;
  Ir.Builder.output b deep;
  let g = Ir.Builder.finish b in
  match Sched.Sdc.schedule ~device ~delays ~resources ~ii:1 g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "II=1 should be infeasible for the deep recurrence"

(* --- cover validation ------------------------------------------------- *)

let test_cover_validate_catches_uncovered_output () =
  let g = xor_chain 2 in
  let cover = Sched.Cover.make g [] in
  match Sched.Cover.validate g cover with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty cover accepted"

let test_cover_validate_catches_nonroot_leaf () =
  let g = xor_chain 2 in
  let cuts = Cuts.trivial_only g in
  let last = Ir.Cdfg.num_nodes g - 1 in
  (* only the output picks a cut; its leaves are not roots *)
  let cover = Sched.Cover.make g [ (last, cuts.(last).(0)) ] in
  match Sched.Cover.validate g cover with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "leafless cover accepted"

let () =
  Alcotest.run "sched"
    [
      ( "heuristic",
        [
          Alcotest.test_case "chains in cycle" `Quick
            test_heuristic_chains_within_cycle;
          Alcotest.test_case "splits long chain" `Quick
            test_heuristic_splits_long_chain;
          Alcotest.test_case "legal on all benchmarks" `Quick
            test_heuristic_verifies_on_benchmarks;
          Alcotest.test_case "recurrence MII" `Quick test_min_ii_recurrence;
          Alcotest.test_case "resource MII" `Quick test_resource_res_mii;
        ] );
      ( "verify",
        [
          Alcotest.test_case "dependence violation" `Quick
            test_verify_catches_dependence_violation;
          Alcotest.test_case "overfull cycle" `Quick
            test_verify_catches_overfull_cycle;
          Alcotest.test_case "late recurrence" `Quick
            test_verify_catches_same_cycle_register_read;
        ] );
      ( "qor",
        [
          Alcotest.test_case "lifetimes" `Quick test_ff_counts_lifetimes;
          Alcotest.test_case "zero in one stage" `Quick test_ff_zero_single_cycle;
          Alcotest.test_case "recurrence register" `Quick
            test_ff_recurrence_register;
          Alcotest.test_case "consts hardwired" `Quick test_const_never_registered;
          Alcotest.test_case "Eq.13 per phase" `Quick test_regs_per_phase_sums_to_ff;
          Alcotest.test_case "Eq.13 at II=2" `Quick test_regs_per_phase_ii2;
          Alcotest.test_case "recompute starts" `Quick test_recompute_starts_asap;
        ] );
      ( "mapsched",
        [
          Alcotest.test_case "xor tree" `Quick test_mapsched_beats_hls_on_tree;
          Alcotest.test_case "legal on all benchmarks" `Quick
            test_mapsched_verifies_on_benchmarks;
        ] );
      ( "multi-cycle",
        [
          Alcotest.test_case "black box latency" `Quick
            test_multicycle_black_box;
          Alcotest.test_case "through the MILP flows" `Quick
            test_multicycle_bb_through_milp;
        ] );
      ( "sdc",
        [
          Alcotest.test_case "legal on all benchmarks" `Quick
            test_sdc_verifies_on_benchmarks;
          Alcotest.test_case "register-minimal" `Quick
            test_sdc_minimizes_registers;
          Alcotest.test_case "resource conflicts" `Quick
            test_sdc_resource_conflicts;
          Alcotest.test_case "recurrence infeasible" `Quick
            test_sdc_recurrence_infeasible;
        ] );
      ( "cover",
        [
          Alcotest.test_case "uncovered output" `Quick
            test_cover_validate_catches_uncovered_output;
          Alcotest.test_case "non-root leaf" `Quick
            test_cover_validate_catches_nonroot_leaf;
        ] );
    ]
