(* Benchmark harness: regenerates every table and figure of the paper
   (DESIGN.md experiment index) and runs bechamel micro-benchmarks of the
   compute kernels behind each of them.

   Environment knobs (documented in README.md):
     PIPESYN_TIME_LIMIT   per-MILP budget in seconds (default 20; the
                          paper used 3600)
     PIPESYN_ONLY         comma-separated benchmark filter for Table 1/2
     PIPESYN_SKIP_MICRO   set to skip the bechamel section
     PIPESYN_JSON         structured-metrics output path
                          (default BENCH_results.json)
     PIPESYN_PROBE_MS     resource-probe cadence in ms (default off)
     PIPESYN_LOG          NDJSON event-log output path (default off) *)

let time_limit =
  try float_of_string (Sys.getenv "PIPESYN_TIME_LIMIT") with Not_found -> 20.0

let only =
  match Sys.getenv_opt "PIPESYN_ONLY" with
  | None -> None
  | Some s -> Some (String.split_on_char ',' (String.uppercase_ascii s))

let selected =
  List.filter
    (fun (e : Benchmarks.Registry.entry) ->
      match only with
      | None -> true
      | Some names -> List.mem (String.uppercase_ascii e.name) names)
    Benchmarks.Registry.all

let setup_for (e : Benchmarks.Registry.entry) =
  let device = Fpga.Device.make ~t_clk:e.t_clk () in
  {
    (Mams.Flow.default_setup ~device) with
    resources = e.resources;
    time_limit;
  }

let section title =
  Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: resource usage comparison                                  *)
(* ------------------------------------------------------------------ *)

type row = {
  entry : Benchmarks.Registry.entry;
  results : (Mams.Flow.method_ * (Mams.Flow.result, string) result) list;
}

let run_table1 () =
  List.map
    (fun (e : Benchmarks.Registry.entry) ->
      let g = e.build () in
      Fmt.pr "running %s (%s)...@." e.name (Ir.Cdfg.stats g);
      { entry = e; results = Mams.Flow.run_all (setup_for e) g })
    selected

let print_table1 rows =
  section "Table 1: resource usage comparison (cf. paper Table 1)";
  Fmt.pr "Targets: kernels 5 ns, applications 10 ns clock period; II = 1;@.";
  Fmt.pr "alpha = beta = 0.5; MILP budget %.0fs per solve.@.@." time_limit;
  let columns =
    Report.
      [
        { title = "Design"; align = Left };
        { title = "Domain"; align = Left };
        { title = "Method"; align = Left };
        { title = "CP(ns)"; align = Right };
        { title = "LUT"; align = Right };
        { title = "%"; align = Right };
        { title = "FF"; align = Right };
        { title = "%"; align = Right };
        { title = "Lat"; align = Right };
      ]
  in
  let table_rows =
    List.concat_map
      (fun { entry; results } ->
        let reference =
          match List.assoc Mams.Flow.Hls_tool results with
          | Ok r -> Some r.Mams.Flow.qor
          | Error _ | (exception Not_found) -> None
        in
        List.map
          (fun (m, r) ->
            match r with
            | Error e ->
                [ entry.name; entry.domain; Mams.Flow.method_name m;
                  "-"; "-"; "-"; "-"; "-"; Printf.sprintf "error: %s" e ]
            | Ok r ->
                let q = r.Mams.Flow.qor in
                let pct get =
                  match (m, reference) with
                  | Mams.Flow.Hls_tool, _ | _, None -> ""
                  | _, Some ref_q -> Report.pct ~reference:(get ref_q) (get q)
                in
                [
                  entry.name;
                  entry.domain;
                  Mams.Flow.method_name m;
                  Report.f2 q.Sched.Qor.cp;
                  string_of_int q.Sched.Qor.luts;
                  pct (fun (q : Sched.Qor.t) -> q.luts);
                  string_of_int q.Sched.Qor.ffs;
                  pct (fun (q : Sched.Qor.t) -> q.ffs);
                  string_of_int q.Sched.Qor.latency;
                ])
          results)
      rows
  in
  Fmt.pr "%s@." (Report.table ~columns table_rows)

(* ------------------------------------------------------------------ *)
(* Table 2: MILP solver runtime                                        *)
(* ------------------------------------------------------------------ *)

let print_table2 rows =
  section "Table 2: MILP solver runtime (cf. paper Table 2)";
  Fmt.pr "Ops = CDFG operations (the analogue of the paper's LLVM@.";
  Fmt.pr "instruction counts at our scaled benchmark sizes).@.@.";
  let columns =
    Report.
      [
        { title = "Design"; align = Left };
        { title = "Ops"; align = Right };
        { title = "Cuts"; align = Right };
        { title = "MILP-base (s)"; align = Right };
        { title = "MILP-map (s)"; align = Right };
        { title = "map status"; align = Left };
        { title = "map model"; align = Left };
      ]
  in
  let sum_base = ref 0.0 and sum_map = ref 0.0 and count = ref 0 in
  let table_rows =
    List.map
      (fun { entry; results } ->
        let g = entry.build () in
        let cuts = Cuts.enumerate ~k:4 g in
        let time m =
          match List.assoc m results with
          | Ok r -> r.Mams.Flow.solve.Mams.Flow.runtime
          | Error _ | (exception Not_found) -> Float.nan
        in
        let tb = time Mams.Flow.Milp_base and tm = time Mams.Flow.Milp_map in
        let status, msize =
          match List.assoc Mams.Flow.Milp_map results with
          | Ok r ->
              ( (match r.Mams.Flow.solve.Mams.Flow.milp_status with
                | Some s -> Fmt.str "%a" Lp.Milp.pp_status s
                | None -> "-"),
                Option.value ~default:"-" r.Mams.Flow.solve.Mams.Flow.model_size
              )
          | Error _ | (exception Not_found) -> ("error", "-")
        in
        if Float.is_finite tb && Float.is_finite tm then begin
          sum_base := !sum_base +. tb;
          sum_map := !sum_map +. tm;
          incr count
        end;
        [
          entry.name;
          string_of_int (Ir.Cdfg.num_nodes g);
          string_of_int (Cuts.total_cuts cuts);
          Report.f2 tb;
          Report.f2 tm;
          status;
          msize;
        ])
      rows
  in
  let mean_row =
    if !count > 0 then
      [ "Mean"; ""; ""; Report.f2 (!sum_base /. float_of_int !count);
        Report.f2 (!sum_map /. float_of_int !count); ""; "" ]
    else [ "Mean"; ""; ""; "-"; "-"; ""; "" ]
  in
  Fmt.pr "%s@." (Report.table ~columns (table_rows @ [ mean_row ]))

(* ------------------------------------------------------------------ *)
(* Convergence: time-to-first-incumbent and final optimality gap       *)
(* ------------------------------------------------------------------ *)

(* The per-result convergence columns land in BENCH_results.json via
   Metrics (schema v5, first_incumbent_s / final_gap / nodes_per_s);
   this table makes them visible in the text report too. *)
let print_convergence rows =
  section "Convergence: first incumbent and final gap (MILP flows)";
  Fmt.pr "first-inc = seconds into the solve when the first incumbent@.";
  Fmt.pr "appeared (0.00 = the warm-start seed was accepted); gap = the@.";
  Fmt.pr "relative incumbent/bound gap at solver exit; root-closed =@.";
  Fmt.pr "fraction of the root integrality gap closed by certified@.";
  Fmt.pr "presolve + cutting planes before branching (DESIGN.md 3j);@.";
  Fmt.pr "nodes/s = B&B node throughput (scales with --domains /@.";
  Fmt.pr "PIPESYN_DOMAINS).@.@.";
  let columns =
    Report.
      [
        { title = "Design"; align = Left };
        { title = "Method"; align = Left };
        { title = "first-inc(s)"; align = Right };
        { title = "gap"; align = Right };
        { title = "root-closed"; align = Right };
        { title = "cuts"; align = Right };
        { title = "nodes"; align = Right };
        { title = "nodes/s"; align = Right };
        { title = "dom"; align = Right };
        { title = "status"; align = Left };
      ]
  in
  let fmt_gap g =
    if Float.is_nan g then "-" else Printf.sprintf "%.1f%%" (100.0 *. g)
  in
  let table_rows =
    List.concat_map
      (fun { entry; results } ->
        List.filter_map
          (fun (m, r) ->
            match (m, r) with
            | (Mams.Flow.Hls_tool | Mams.Flow.Sdc_tool
              | Mams.Flow.Map_heuristic), _
            | _, Error _ ->
                None
            | (Mams.Flow.Milp_base | Mams.Flow.Milp_map), Ok r ->
                let m' = Mams.Flow.metrics ~name:entry.name r in
                Some
                  [
                    entry.name;
                    m'.Obs.Metrics.method_;
                    (if Float.is_nan m'.Obs.Metrics.first_incumbent_s then "-"
                     else Report.f2 m'.Obs.Metrics.first_incumbent_s);
                    fmt_gap m'.Obs.Metrics.final_gap;
                    fmt_gap m'.Obs.Metrics.gap_closed_root;
                    string_of_int m'.Obs.Metrics.milp_cuts;
                    (match m'.Obs.Metrics.bnb_nodes with
                    | Some n -> string_of_int n
                    | None -> "-");
                    (if Float.is_nan m'.Obs.Metrics.nodes_per_s then "-"
                     else Printf.sprintf "%.0f" m'.Obs.Metrics.nodes_per_s);
                    string_of_int m'.Obs.Metrics.domains;
                    m'.Obs.Metrics.status;
                  ])
          results)
      rows
  in
  Fmt.pr "%s@." (Report.table ~columns table_rows)

(* ------------------------------------------------------------------ *)
(* Figure 1: the Reed-Solomon kernel schedules                         *)
(* ------------------------------------------------------------------ *)

let print_figure1 () =
  section "Figure 1: pipeline schedules for the Reed-Solomon kernel";
  Fmt.pr "Device: 4-LUT, 5 ns target, 2 ns per logic op / LUT level.@.@.";
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let device = Fpga.Device.figure1 in
  let delays =
    Fpga.Delays.make ~logic:2.0 ~arith_base:1.6 ~arith_per_bit:0.2 ()
  in
  let setup =
    { (Mams.Flow.default_setup ~device) with delays; time_limit }
  in
  List.iter
    (fun (label, m) ->
      match Mams.Flow.run setup m g with
      | Error e -> Fmt.pr "%s: error: %s@." label e
      | Ok r ->
          Fmt.pr "(%s) %s: %d stage(s), %d LUTs, %d FFs@." label
            (Mams.Flow.method_name m)
            (Sched.Schedule.latency r.Mams.Flow.schedule + 1)
            r.Mams.Flow.qor.Sched.Qor.luts r.Mams.Flow.qor.Sched.Qor.ffs;
          Fmt.pr "%a@." (Sched.Schedule.pp_detailed g) r.Mams.Flow.schedule)
    [ ("a: suboptimal, additive delays", Mams.Flow.Hls_tool);
      ("b: optimal, mapping-aware", Mams.Flow.Milp_map) ]

(* ------------------------------------------------------------------ *)
(* Figure 2: word-level cut enumeration on the 2-bit kernel            *)
(* ------------------------------------------------------------------ *)

let print_figure2 () =
  section "Figure 2: cut enumeration for the Reed-Solomon kernel (2-bit)";
  let g = Benchmarks.Rs.kernel ~width:2 () in
  let cuts = Cuts.enumerate ~k:4 g in
  Fmt.pr "%d nodes, %d cuts, K = 4.@.@." (Ir.Cdfg.num_nodes g)
    (Cuts.total_cuts cuts);
  Array.iteri
    (fun v cs -> Fmt.pr "%a@.@." (Cuts.pp_node_cuts g) (v, cs))
    cuts;
  (* The paper's headline observation: the sign test C reads only B's MSB,
     so a cone absorbing the comparison stays K-feasible. *)
  Ir.Cdfg.iter
    (fun nd ->
      match nd.op with
      | Ir.Op.Cmp _ ->
          let deep =
            Array.exists
              (fun (c : Cuts.cut) -> Bitdep.Int_set.cardinal c.Cuts.cone > 1)
              cuts.(nd.id)
          in
          Fmt.pr
            "MSB narrowing: the comparison %s %s absorbed into larger cones.@."
            (Ir.Cdfg.node_name g nd.id)
            (if deep then "CAN be" else "can NOT be")
      | _ -> ())
    g

(* ------------------------------------------------------------------ *)
(* Ablation A1: exact (paper) vs compact liveness formulation          *)
(* ------------------------------------------------------------------ *)

let print_ablation_liveness () =
  section "Ablation A1: paper-exact vs compact liveness formulation";
  let budget = Float.min time_limit 30.0 in
  Fmt.pr
    "Both formulations optimize the same register objective; the compact@.";
  Fmt.pr "one replaces O(V*M) def/kill/live binaries with one lifetime@.";
  Fmt.pr "variable per node (DESIGN.md). Budget %.0fs per solve.@.@." budget;
  let columns =
    Report.
      [
        { title = "Kernel"; align = Left };
        { title = "Form"; align = Left };
        { title = "Vars"; align = Right };
        { title = "Rows"; align = Right };
        { title = "Time(s)"; align = Right };
        { title = "Status"; align = Left };
        { title = "FF"; align = Right };
      ]
  in
  let device = Fpga.Device.make ~t_clk:10.0 () in
  let delays = Fpga.Delays.default in
  let run_one name g =
    let cuts = Cuts.enumerate ~k:4 g in
    match
      Sched.Heuristic.schedule ~device ~delays
        ~resources:Fpga.Resource.unlimited ~ii:1 g
    with
    | Error _ -> []
    | Ok base_sched ->
        let cfg : Mams.Formulation.config =
          {
            device;
            delays;
            resources = Fpga.Resource.unlimited;
            ii = 1;
            max_latency = max 3 (Sched.Schedule.latency base_sched);
            alpha = 0.5;
            beta = 0.5;
            cut_delay = Mams.Formulation.mapped_delay ~device ~delays;
          }
        in
        let solve label model extract =
          let t0 = Obs.Clock.wall () in
          let r = Lp.Milp.solve ~time_limit:budget model in
          let dt = Obs.Clock.wall () -. t0 in
          let ff =
            match r.Lp.Milp.status with
            | Lp.Milp.Optimal | Lp.Milp.Feasible ->
                let sched, cover = extract r in
                Sched.Qor.ff_bits g cover sched ~device ~delays
            | Lp.Milp.Infeasible | Lp.Milp.Unbounded | Lp.Milp.Unknown -> -1
          in
          [
            name; label;
            string_of_int (Lp.Model.num_vars model);
            string_of_int (Lp.Model.num_constraints model);
            Report.f2 dt;
            Fmt.str "%a" Lp.Milp.pp_status r.Lp.Milp.status;
            string_of_int ff;
          ]
        in
        let fc = Mams.Formulation.build cfg g cuts in
        let fe = Mams.Formulation_exact.build cfg g cuts in
        [
          solve "compact" (Mams.Formulation.model fc)
            (Mams.Formulation.extract fc);
          solve "exact" (Mams.Formulation_exact.model fe)
            (Mams.Formulation_exact.extract fe);
        ]
  in
  let rows =
    run_one "RS-kernel(w=2)" (Benchmarks.Rs.kernel ~width:2 ())
    @ run_one "RS-kernel(w=4)" (Benchmarks.Rs.kernel ~width:4 ())
    @ run_one "RS-kernel(w=8)" (Benchmarks.Rs.kernel ~width:8 ())
  in
  Fmt.pr "%s@." (Report.table ~columns rows)

(* ------------------------------------------------------------------ *)
(* Ablation A2: cut pruning limit vs QoR and runtime                   *)
(* ------------------------------------------------------------------ *)

let print_ablation_pruning () =
  section "Ablation A2: cut pruning limit vs QoR/runtime (XORR kernel)";
  let e = Benchmarks.Registry.find "XORR" in
  let g = e.build () in
  let columns =
    Report.
      [
        { title = "max_cuts"; align = Right };
        { title = "Cuts"; align = Right };
        { title = "LUT"; align = Right };
        { title = "FF"; align = Right };
        { title = "Lat"; align = Right };
        { title = "Time(s)"; align = Right };
      ]
  in
  let rows =
    List.map
      (fun max_cuts ->
        let params = { (Cuts.default_params ~k:4) with max_cuts } in
        let setup =
          { (setup_for e) with
            cut_params = Some params;
            time_limit = Float.min time_limit 15.0 }
        in
        let cuts = Cuts.enumerate ~params ~k:4 g in
        match Mams.Flow.run setup Mams.Flow.Milp_map g with
        | Ok r ->
            [
              string_of_int max_cuts;
              string_of_int (Cuts.total_cuts cuts);
              string_of_int r.Mams.Flow.qor.Sched.Qor.luts;
              string_of_int r.Mams.Flow.qor.Sched.Qor.ffs;
              string_of_int r.Mams.Flow.qor.Sched.Qor.latency;
              Report.f2 r.Mams.Flow.solve.Mams.Flow.runtime;
            ]
        | Error err -> [ string_of_int max_cuts; "-"; "-"; "-"; "-"; err ])
      [ 1; 3; 6; 10 ]
  in
  Fmt.pr "%s@." (Report.table ~columns rows)

(* ------------------------------------------------------------------ *)
(* Ablation A5: area-flow heuristic vs ILP minimum-area mapping        *)
(* ------------------------------------------------------------------ *)

let print_ablation_exact_mapping () =
  section "Ablation A5: area-flow heuristic vs ILP minimum-area mapping";
  Fmt.pr "Downstream covering of the HLS-Tool schedule (paper ref [7],@.";
  Fmt.pr "here cut-based). Budget %.0fs per ILP.@.@."
    (Float.min time_limit 15.0);
  let columns =
    Report.
      [
        { title = "Design"; align = Left };
        { title = "Area-flow LUT"; align = Right };
        { title = "ILP LUT"; align = Right };
        { title = "ILP status"; align = Left };
      ]
  in
  let rows =
    List.filter_map
      (fun name ->
        let entry = Benchmarks.Registry.find name in
        let g = entry.build () in
        let device = Fpga.Device.make ~t_clk:entry.t_clk () in
        let delays = Fpga.Delays.default in
        match
          Sched.Heuristic.schedule ~device ~delays ~resources:entry.resources
            ~ii:1 g
        with
        | Error _ -> None
        | Ok sched ->
            let cuts = Cuts.enumerate ~k:4 g in
            let flow = Techmap.map_schedule ~device ~delays ~cuts g sched in
            let exact =
              Techmap.map_exact ~time_limit:(Float.min time_limit 15.0)
                ~device ~delays ~cuts g sched
            in
            Some
              [
                name;
                string_of_int (Sched.Cover.lut_area flow);
                (match exact with
                | Ok c -> string_of_int (Sched.Cover.lut_area c)
                | Error _ -> "-");
                (match exact with
                | Ok _ -> "solved"
                | Error f -> Techmap.exact_reason_to_string f.Techmap.reason);
              ])
      [ "CLZ"; "XORR"; "GFMUL"; "MT"; "RS"; "DR"; "GSM" ]
  in
  Fmt.pr "%s@." (Report.table ~columns rows)

(* ------------------------------------------------------------------ *)
(* Extension: the map-first heuristic (paper Sec. 5 future work)       *)
(* ------------------------------------------------------------------ *)

(* Returns the SDC / map-first metrics so the JSON file covers the
   extension flows too. *)
let print_map_first rows =
  let extension_metrics = ref [] in
  section "Extension: SDC and map-first heuristics vs the MILP flows";
  Fmt.pr "SDC = difference-constraint modulo scheduling (LegUp/Vivado-HLS@.";
  Fmt.pr "style, paper refs [22][3]); Map-first = the paper's future-work@.";
  Fmt.pr "heuristic (area-flow map, then schedule). Both run in@.";
  Fmt.pr "milliseconds.@.@.";
  let columns =
    Report.
      [
        { title = "Design"; align = Left };
        { title = "HLS FF"; align = Right };
        { title = "SDC FF"; align = Right };
        { title = "Map-first FF"; align = Right };
        { title = "MILP-map FF"; align = Right };
        { title = "Map-first LUT"; align = Right };
        { title = "MILP-map LUT"; align = Right };
      ]
  in
  let table_rows =
    List.filter_map
      (fun { entry; results } ->
        let g = entry.build () in
        match
          ( List.assoc_opt Mams.Flow.Hls_tool results,
            Mams.Flow.run (setup_for entry) Mams.Flow.Sdc_tool g,
            Mams.Flow.run (setup_for entry) Mams.Flow.Map_heuristic g,
            List.assoc_opt Mams.Flow.Milp_map results )
        with
        | Some (Ok hls), Ok sdc, Ok mf, Some (Ok map) ->
            extension_metrics :=
              Mams.Flow.metrics ~name:entry.name mf
              :: Mams.Flow.metrics ~name:entry.name sdc
              :: !extension_metrics;
            Some
              [
                entry.name;
                string_of_int hls.Mams.Flow.qor.Sched.Qor.ffs;
                string_of_int sdc.Mams.Flow.qor.Sched.Qor.ffs;
                string_of_int mf.Mams.Flow.qor.Sched.Qor.ffs;
                string_of_int map.Mams.Flow.qor.Sched.Qor.ffs;
                string_of_int mf.Mams.Flow.qor.Sched.Qor.luts;
                string_of_int map.Mams.Flow.qor.Sched.Qor.luts;
              ]
        | _, _, _, _ -> None)
      rows
  in
  Fmt.pr "%s@." (Report.table ~columns table_rows);
  List.rev !extension_metrics

(* ------------------------------------------------------------------ *)
(* Scaling study: model size vs. runtime (Sec. 4.3's observation that   *)
(* MILP runtime scales with the number of constraints)                  *)
(* ------------------------------------------------------------------ *)

let print_scaling () =
  section "Scaling study: constraints vs MILP-map runtime (cf. Sec. 4.3)";
  let budget = Float.min time_limit 15.0 in
  Fmt.pr "Warm-started from the map-first cover (as in the real flow);@.";
  Fmt.pr "budget %.0fs per solve. The optimality gap is the hardness@." budget;
  Fmt.pr "signal: it grows with the constraint count.@.@.";
  let columns =
    Report.
      [
        { title = "Instance"; align = Left };
        { title = "Ops"; align = Right };
        { title = "Cuts"; align = Right };
        { title = "Vars"; align = Right };
        { title = "Rows"; align = Right };
        { title = "Time(s)"; align = Right };
        { title = "Status"; align = Left };
        { title = "Gap"; align = Right };
      ]
  in
  let device = Fpga.Device.make ~t_clk:10.0 () in
  let delays = Fpga.Delays.default in
  let one name g =
    let cuts = Cuts.enumerate ~k:4 g in
    match
      Sched.Heuristic.schedule ~device ~delays
        ~resources:Fpga.Resource.unlimited ~ii:1 g
    with
    | Error _ -> [ name; "-"; "-"; "-"; "-"; "-"; "infeasible"; "-" ]
    | Ok base ->
        let warm =
          let cover = Techmap.map_global ~device ~delays ~cuts g in
          match
            Sched.Mapsched.schedule ~device ~delays
              ~resources:Fpga.Resource.unlimited ~ii:1 g cover
          with
          | Ok s -> Some (s, cover)
          | Error _ -> None
        in
        let max_latency =
          List.fold_left
            (fun acc s -> max acc (Sched.Schedule.latency s))
            (max 2 (Sched.Schedule.latency base))
            (match warm with Some (s, _) -> [ s ] | None -> [])
        in
        let cfg : Mams.Formulation.config =
          {
            device; delays; resources = Fpga.Resource.unlimited; ii = 1;
            max_latency;
            alpha = 0.5; beta = 0.5;
            cut_delay = Mams.Formulation.mapped_delay ~device ~delays;
          }
        in
        let f = Mams.Formulation.build cfg g cuts in
        let model = Mams.Formulation.model f in
        let incumbent =
          match warm with
          | None -> None
          | Some (s, cover) -> (
              match Mams.Formulation.incumbent_of_schedule f s cover with
              | x
                when Lp.Model.check model
                       ~values:(fun v -> x.(Lp.Model.var_index v))
                       ()
                     = Ok () ->
                  Some x
              | _ | (exception Invalid_argument _) -> None)
        in
        let t0 = Obs.Clock.wall () in
        let r =
          Lp.Milp.solve ~time_limit:budget ?incumbent
            ~branch_priority:(Mams.Formulation.branch_priorities f)
            model
        in
        let dt = Obs.Clock.wall () -. t0 in
        [
          name;
          string_of_int (Ir.Cdfg.num_nodes g);
          string_of_int (Cuts.total_cuts cuts);
          string_of_int (Lp.Model.num_vars model);
          string_of_int (Lp.Model.num_constraints model);
          Report.f2 dt;
          Fmt.str "%a" Lp.Milp.pp_status r.Lp.Milp.status;
          Printf.sprintf "%.0f%%" (100.0 *. r.Lp.Milp.stats.Lp.Milp.gap);
        ]
  in
  let rows =
    List.map
      (fun taps ->
        one (Printf.sprintf "RS taps=%d" taps)
          (Benchmarks.Rs.full ~width:4 ~taps ()))
      [ 2; 4; 6 ]
    @ List.map
        (fun elements ->
          one
            (Printf.sprintf "XORR n=%d" elements)
            (Benchmarks.Xorr.build ~elements ~width:8 ~mix_depth:3 ()))
        [ 4; 8; 12 ]
  in
  Fmt.pr "%s@." (Report.table ~columns rows)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Micro-benchmarks (bechamel): per-table compute kernels";
  let open Bechamel in
  let g_rs = Benchmarks.Rs.kernel ~width:8 () in
  let g_xorr = Benchmarks.Xorr.build ~elements:8 ~width:8 ~mix_depth:3 () in
  let device = Fpga.Device.make ~t_clk:10.0 () in
  let delays = Fpga.Delays.default in
  let cuts_rs = Cuts.enumerate ~k:4 g_rs in
  (* A captured mid-tree node LP: the root relaxation of the mapping-aware
     formulation on RS, branched on its first fractional cut-selection
     binary — exactly the subproblem B&B hands to the solver at every
     node. Each benchmark run re-optimizes across the sibling switch
     (down child <-> up child), a real bound change; the cold variant
     rebuilds the tableau and runs both phases from scratch, the warm
     variant threads one state like Milp does and dual-repairs the
     parent basis, never paying a rebuild or copy. *)
  let node_raw, node_dn, node_up, node_state =
    let cfg : Mams.Formulation.config =
      {
        device; delays; resources = Fpga.Resource.unlimited;
        ii = 1; max_latency = 4; alpha = 0.5; beta = 0.5;
        cut_delay = Mams.Formulation.mapped_delay ~device ~delays;
      }
    in
    let f = Mams.Formulation.build cfg g_rs cuts_rs in
    let raw = Lp.Model.to_raw (Mams.Formulation.model f) in
    let lb = Array.copy raw.Lp.Model.lb
    and ub = Array.copy raw.Lp.Model.ub in
    let r0, st = Lp.Simplex.solve_state ~lb ~ub raw in
    let branch = ref (-1) in
    Array.iteri
      (fun j isint ->
        if isint && !branch < 0 then
          let v = r0.Lp.Simplex.x.(j) in
          if Float.abs (v -. Float.round v) > 1e-6 then branch := j)
      raw.Lp.Model.integer;
    let j = !branch in
    let v = if j >= 0 then r0.Lp.Simplex.x.(j) else 0.0 in
    let dn_ub = Array.copy ub and up_lb = Array.copy lb in
    if j >= 0 then begin
      dn_ub.(j) <- Float.floor v;
      up_lb.(j) <- Float.floor v +. 1.0
    end;
    (raw, (lb, dn_ub), (up_lb, ub), st)
  in
  (* 1-vs-N-domain node throughput on the same GFMUL B&B tree: both
     variants explore exactly [node_limit] nodes (budget-truncated), so
     time/run is inversely proportional to nodes/s and the pair exposes
     the work-stealing pool's speedup (or, on a single-core host, its
     coordination overhead). *)
  let gfmul_model =
    let g = Benchmarks.Gfmul.build () in
    let cuts = Cuts.enumerate ~k:4 g in
    let cfg : Mams.Formulation.config =
      {
        device; delays; resources = Fpga.Resource.unlimited;
        ii = 1; max_latency = 4; alpha = 0.5; beta = 0.5;
        cut_delay = Mams.Formulation.mapped_delay ~device ~delays;
      }
    in
    Mams.Formulation.model (Mams.Formulation.build cfg g cuts)
  in
  let bnb_gfmul domains () =
    ignore
      (Lp.Milp.solve ~time_limit:30.0 ~node_limit:32 ~domains gfmul_model)
  in
  (* Root-strengthening A/B on the same GFMUL tree: both variants are
     truncated to the same node budget, so the pair isolates what the
     certified presolve + cut rounds cost at the root and save in the
     tree (DESIGN.md 3j). *)
  let root_cuts_gfmul cuts () =
    ignore
      (Lp.Milp.solve ~time_limit:30.0 ~node_limit:32 ~cuts gfmul_model)
  in
  let flip_cold = ref false and flip_warm = ref false in
  let node_bounds flip =
    flip := not !flip;
    if !flip then node_dn else node_up
  in
  let heuristic g () =
    match
      Sched.Heuristic.schedule ~device ~delays
        ~resources:Fpga.Resource.unlimited ~ii:1 g
    with
    | Ok s -> ignore (Sys.opaque_identity s)
    | Error _ -> ()
  in
  let tests =
    Test.make_grouped ~name:"pipesyn"
      [
        Test.make ~name:"table1/cut-enumeration-rs"
          (Staged.stage (fun () -> ignore (Cuts.enumerate ~k:4 g_rs)));
        Test.make ~name:"table1/cut-enumeration-xorr"
          (Staged.stage (fun () -> ignore (Cuts.enumerate ~k:4 g_xorr)));
        Test.make ~name:"table1/hls-baseline-rs" (Staged.stage (heuristic g_rs));
        Test.make ~name:"table1/techmap-global-rs"
          (Staged.stage (fun () ->
               ignore (Techmap.map_global ~device ~delays ~cuts:cuts_rs g_rs)));
        Test.make ~name:"table2/milp-build-map-rs"
          (Staged.stage (fun () ->
               let cfg : Mams.Formulation.config =
                 {
                   device; delays; resources = Fpga.Resource.unlimited;
                   ii = 1; max_latency = 4; alpha = 0.5; beta = 0.5;
                   cut_delay = Mams.Formulation.mapped_delay ~device ~delays;
                 }
               in
               ignore (Mams.Formulation.build cfg g_rs cuts_rs)));
        Test.make ~name:"lp/node-cold-solve"
          (Staged.stage (fun () ->
               let lb, ub = node_bounds flip_cold in
               ignore (Lp.Simplex.solve ~lb ~ub node_raw)));
        Test.make ~name:"lp/node-warm-resolve"
          (Staged.stage (fun () ->
               let lb, ub = node_bounds flip_warm in
               ignore (Lp.Simplex.resolve ~lb ~ub node_state)));
        Test.make ~name:"milp/bnb-gfmul-1-domain" (Staged.stage (bnb_gfmul 1));
        Test.make ~name:"milp/bnb-gfmul-4-domains" (Staged.stage (bnb_gfmul 4));
        Test.make ~name:"milp/root-cuts-on-gfmul"
          (Staged.stage (root_cuts_gfmul true));
        Test.make ~name:"milp/root-cuts-off-gfmul"
          (Staged.stage (root_cuts_gfmul false));
        Test.make ~name:"fig1/milp-map-rs2"
          (Staged.stage (fun () ->
               let g = Benchmarks.Rs.kernel ~width:2 () in
               let setup =
                 { (Mams.Flow.default_setup ~device:Fpga.Device.figure1) with
                   time_limit = 10.0 }
               in
               ignore (Mams.Flow.run setup Mams.Flow.Milp_map g)));
        Test.make ~name:"fig2/bitdep-support-rs"
          (Staged.stage (fun () ->
               Array.iter
                 (fun cs ->
                   Array.iter
                     (fun (c : Cuts.cut) ->
                       ignore
                         (Bitdep.max_support_width g_rs ~root:c.Cuts.root
                            ~cone:c.Cuts.cone))
                     cs)
                 cuts_rs));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ e ] -> e
        | Some _ | None -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let human ns =
    if Float.is_nan ns then "-"
    else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let columns =
    Report.
      [
        { title = "Kernel"; align = Left };
        { title = "time/run"; align = Right };
      ]
  in
  let rows =
    List.sort compare !rows |> List.map (fun (n, v) -> [ n; human v ])
  in
  Fmt.pr "%s@." (Report.table ~columns rows)

(* ------------------------------------------------------------------ *)
(* Structured metrics: BENCH_results.json (README.md "Observability")  *)
(* ------------------------------------------------------------------ *)

let table1_metrics rows =
  List.concat_map
    (fun { entry; results } ->
      List.map
        (fun (m, r) ->
          match r with
          | Ok r -> Mams.Flow.metrics ~name:entry.name r
          | Error _ -> Mams.Flow.error_metrics ~name:entry.name m)
        results)
    rows

let write_metrics results =
  let path =
    Option.value (Sys.getenv_opt "PIPESYN_JSON") ~default:"BENCH_results.json"
  in
  Obs.Metrics.write_file ~path ~results;
  Fmt.pr "@.wrote %s (%d results, schema v%d)@." path (List.length results)
    Obs.Metrics.schema_version

let () =
  Fmt.pr "pipesyn benchmark harness — reproduction of Zhao et al., DAC 2015@.";
  Fmt.pr "MILP budget per solve: %.0fs (PIPESYN_TIME_LIMIT to change)@."
    time_limit;
  Obs.reset ();
  (* Live telemetry, both env-gated no-ops when unset: the resource
     probe (PIPESYN_PROBE_MS) and the NDJSON event log (PIPESYN_LOG). *)
  if Sys.getenv_opt "PIPESYN_LOG" <> None then Obs.Log.enable ();
  ignore (Obs.Probe.start ());
  let rows = run_table1 () in
  print_table1 rows;
  print_table2 rows;
  print_convergence rows;
  print_figure1 ();
  print_figure2 ();
  print_ablation_liveness ();
  print_ablation_pruning ();
  print_ablation_exact_mapping ();
  let extension_metrics = print_map_first rows in
  print_scaling ();
  Obs.Probe.stop ();
  write_metrics (table1_metrics rows @ extension_metrics);
  (match Sys.getenv_opt "PIPESYN_LOG" with
  | None -> ()
  | Some path ->
      Obs.Log.write ~path;
      Fmt.pr "wrote %s (%d log events%s)@." path (Obs.Log.num_events ())
        (let d = Obs.Log.dropped () in
         if d = 0 then "" else Fmt.str ", %d dropped at cap" d));
  if Sys.getenv_opt "PIPESYN_SKIP_MICRO" = None then micro_benchmarks ();
  Fmt.pr "@.done.@."
