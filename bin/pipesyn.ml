(* pipesyn — command-line driver for the mapping-aware pipeline synthesis
   library (reproduction of Zhao et al., DAC 2015). *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)
(* ------------------------------------------------------------------ *)

let bench_arg =
  let doc = "Benchmark name (CLZ, XORR, GFMUL, CORDIC, MT, AES, RS, DR, GSM)." in
  Arg.(required & opt (some string) None & info [ "b"; "benchmark" ] ~doc)

let method_arg =
  let methods =
    [
      ("hls", Mams.Flow.Hls_tool);
      ("sdc", Mams.Flow.Sdc_tool);
      ("base", Mams.Flow.Milp_base);
      ("map", Mams.Flow.Milp_map);
      ("mapfirst", Mams.Flow.Map_heuristic);
    ]
  in
  let doc =
    "Flow to run: hls | sdc | base | map | mapfirst (default: the three \
     paper flows)."
  in
  Arg.(value & opt (some (enum methods)) None & info [ "m"; "method" ] ~doc)

let time_limit_arg =
  let doc = "MILP time budget in seconds (the paper used 3600)." in
  Arg.(value & opt float 20.0 & info [ "t"; "time-limit" ] ~doc)

let ii_arg =
  let doc = "Target initiation interval; 0 picks the minimum feasible II." in
  Arg.(value & opt int 1 & info [ "ii" ] ~doc)

let k_arg =
  let doc = "LUT input count K." in
  Arg.(value & opt int 4 & info [ "k" ] ~doc)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose output.")

let alpha_arg =
  let doc = "LUT weight alpha in the Eq. 15 objective." in
  Arg.(value & opt float 0.5 & info [ "alpha" ] ~doc)

let beta_arg =
  let doc = "Register weight beta in the Eq. 15 objective." in
  Arg.(value & opt float 0.5 & info [ "beta" ] ~doc)

let faults_arg =
  let doc =
    "Arm fault-injection points: a comma-separated spec of $(i,point), \
     $(i,point\\@N) (N-th hit only) or $(i,point%P:S) (P percent, seeded \
     with S). See `pipesyn faults' for the registered points. Also read \
     from $(b,PIPESYN_FAULTS)."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~doc ~docv:"SPEC")

let deadline_arg =
  let doc =
    "Global wall-clock budget in seconds for the whole run (lint, cut \
     enumeration, solve, mapping, verification). On expiry the flow \
     degrades gracefully and the exit code is 2. Also read from \
     $(b,PIPESYN_DEADLINE)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc ~docv:"SECS")

let domains_arg =
  let doc =
    "Branch-and-bound worker domains for the MILP solves (an OCaml 5 \
     work-stealing pool). Exhaustive solves return identical statuses \
     and objectives for every value of $(docv) — see the README's \
     determinism guarantee. Also read from $(b,PIPESYN_DOMAINS); \
     default 1."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~doc ~docv:"N")

let stall_window_arg =
  let doc =
    "Stall-watchdog window in seconds: a B\\&B worker that makes no \
     progress for a full window is first nudged (cold refactorization), \
     then its node is cancelled and requeued for replay. Off by default; \
     results are unaffected either way (the recovery is recorded in the \
     degradation log)."
  in
  Arg.(value & opt (some float) None & info [ "stall-window" ] ~doc ~docv:"SECS")

let cuts_flag_arg =
  let on =
    ( Some true,
      Arg.info [ "cuts" ]
        ~doc:
          "Force-enable certified root cutting planes (Chvatal-Gomory and \
           knapsack covers separated at the MILP root; see the README's \
           \"Root cuts\" section). On by default; $(b,--no-cuts) or \
           $(b,PIPESYN_CUTS=0) disables. Results (status, objective, \
           incumbent) are identical either way — cuts only change how \
           much of the gap closes before branching." )
  in
  let off =
    ( Some false,
      Arg.info [ "no-cuts" ]
        ~doc:"Disable root cutting planes for this run." )
  in
  Arg.(value & vflag None [ on; off ])

let presolve_flag_arg =
  let on =
    ( Some true,
      Arg.info [ "presolve" ]
        ~doc:
          "Force-enable certified presolve (fixpoint bound tightening on \
           the root model, replayed exactly by `pipesyn audit'). On by \
           default." )
  in
  let off =
    ( Some false,
      Arg.info [ "no-presolve" ]
        ~doc:"Disable presolve bound tightening for this run." )
  in
  Arg.(value & vflag None [ on; off ])

(* Exit codes (README, "Exit codes"): 0 ok, 1 error findings / user error,
   2 degraded result, 3 internal error. *)
let exit_error = 1
let exit_degraded = 2

let arm_faults spec =
  (match Resilience.Fault.load_env () with
  | Ok () -> ()
  | Error e ->
      Fmt.epr "PIPESYN_FAULTS: %s@." e;
      exit exit_error);
  match spec with
  | None -> ()
  | Some s -> (
      match Resilience.Fault.arm s with
      | Ok () -> ()
      | Error e ->
          Fmt.epr "--faults: %s@." e;
          exit exit_error)

let wall_budget_of deadline =
  match deadline with
  | Some _ -> deadline
  | None -> (
      match Sys.getenv_opt "PIPESYN_DEADLINE" with
      | None -> None
      | Some s -> (
          match float_of_string_opt s with
          | Some b -> Some b
          | None ->
              Fmt.epr "PIPESYN_DEADLINE: not a number: %s@." s;
              exit exit_error))

(* ------------------------------------------------------------------ *)
(* live telemetry: --log / --progress / PIPESYN_PROBE_MS               *)
(* ------------------------------------------------------------------ *)

(* --log FILE wins over the PIPESYN_LOG environment variable; either
   turns the structured NDJSON event stream on. *)
let log_path_of flag =
  match flag with Some _ -> flag | None -> Sys.getenv_opt "PIPESYN_LOG"

(* One `\r'-overwritten status line on stderr, re-rendered from the
   live log events: phase, node throughput, optimality gap, heap. *)
let install_progress_sink () =
  let phase = ref "start" in
  let nps = ref Float.nan and gap = ref Float.nan and heap_w = ref Float.nan in
  let num j = match j with Obs.Json.Float f -> f | Obs.Json.Int i -> float_of_int i | _ -> Float.nan in
  let render () =
    let s_nps = if Float.is_nan !nps then "-" else Fmt.str "%.0f" !nps in
    let s_gap =
      if Float.is_nan !gap then "-" else Fmt.str "%.2f%%" (100.0 *. !gap)
    in
    let s_heap =
      if Float.is_nan !heap_w then "-"
      else Fmt.str "%.1fMiB" (!heap_w *. 8.0 /. (1024.0 *. 1024.0))
    in
    Fmt.epr "\r  %-10s nodes/s %-8s gap %-8s heap %-10s%!" !phase s_nps s_gap
      s_heap
  in
  Obs.Log.set_sink
    (Some
       (fun e ->
         let arg k = List.assoc_opt k e.Obs.Log.l_args in
         (match e.Obs.Log.l_name with
         | "flow.phase" -> (
             match arg "phase" with
             | Some (Obs.Json.String p) -> phase := p
             | _ -> ())
         | "probe.sample" ->
             Option.iter (fun j -> nps := num j) (arg "nodes_per_s");
             Option.iter (fun j -> gap := num j) (arg "gap");
             Option.iter (fun j -> heap_w := num j) (arg "heap_words")
         | "milp.incumbent" -> Option.iter (fun j -> gap := num j) (arg "gap")
         | _ -> ());
         render ()))

(* Enable the log stream (flag or env), the progress renderer, and the
   resource probe. The probe is started unconditionally: with
   PIPESYN_PROBE_MS unset, [Obs.Probe.start] is a no-op returning
   false. Returns the resolved log path for [telemetry_finish]. *)
let telemetry_start ~log ~progress =
  let log = log_path_of log in
  if (log <> None || progress) && not (Obs.Log.enabled ()) then
    Obs.Log.enable ();
  if progress then install_progress_sink ();
  ignore (Obs.Probe.start ());
  log

let telemetry_finish ~log ~progress =
  Obs.Probe.stop ();
  if progress then begin
    Obs.Log.set_sink None;
    Fmt.epr "\r%s\r%!" (String.make 60 ' ')
  end;
  match log with
  | None -> ()
  | Some path ->
      Obs.Log.write ~path;
      Fmt.pr "wrote %s (%d log events%s)@." path (Obs.Log.num_events ())
        (let d = Obs.Log.dropped () in
         if d = 0 then "" else Fmt.str ", %d dropped at cap" d)

let entry_of name =
  match Benchmarks.Registry.find name with
  | e -> e
  | exception Not_found ->
      Fmt.epr "unknown benchmark %s; try `pipesyn list'@." name;
      exit exit_error

let setup_of ?(k = 4) ?(ii = 1) ?(alpha = 0.5) ?(beta = 0.5) ?wall_budget
    ?domains ~time_limit (e : Benchmarks.Registry.entry) =
  let device = Fpga.Device.make ~k ~t_clk:e.t_clk () in
  {
    (Mams.Flow.default_setup ~device) with
    resources = e.resources;
    time_limit;
    ii;
    alpha;
    beta;
    wall_budget;
    domains;
  }

let method_key m =
  match m with
  | Mams.Flow.Hls_tool -> "hls"
  | Mams.Flow.Sdc_tool -> "sdc"
  | Mams.Flow.Milp_base -> "base"
  | Mams.Flow.Milp_map -> "map"
  | Mams.Flow.Map_heuristic -> "mapfirst"

let method_of_key = function
  | "hls" -> Some Mams.Flow.Hls_tool
  | "sdc" -> Some Mams.Flow.Sdc_tool
  | "base" -> Some Mams.Flow.Milp_base
  | "map" -> Some Mams.Flow.Milp_map
  | "mapfirst" -> Some Mams.Flow.Map_heuristic
  | _ -> None

(* The driver payload stored in every checkpoint: what `pipesyn resume'
   needs to rebuild the identical setup (the model fingerprint inside the
   checkpoint then cross-checks the rebuild). *)
let checkpoint_meta ~bench ~method_ ~time_limit ~ii ~k ~alpha ~beta ~optimize
    ~audit =
  Obs.Json.Obj
    [
      ("benchmark", Obs.Json.String bench);
      ("method", Obs.Json.String (method_key method_));
      ("time_limit", Obs.Json.Float time_limit);
      ("ii", Obs.Json.Int ii);
      ("k", Obs.Json.Int k);
      ("alpha", Obs.Json.Float alpha);
      ("beta", Obs.Json.Float beta);
      ("optimize", Obs.Json.Bool optimize);
      ("audit", Obs.Json.Bool audit);
    ]

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    let columns =
      Report.
        [
          { title = "Name"; align = Left };
          { title = "Class"; align = Left };
          { title = "Domain"; align = Left };
          { title = "Tclk"; align = Right };
          { title = "Ops"; align = Right };
          { title = "Description"; align = Left };
        ]
    in
    let rows =
      List.map
        (fun (e : Benchmarks.Registry.entry) ->
          let g = e.build () in
          [
            e.name;
            Benchmarks.Registry.kind_name e.kind;
            e.domain;
            Fmt.str "%.0fns" e.t_clk;
            string_of_int (Ir.Cdfg.num_nodes g);
            e.description;
          ])
        Benchmarks.Registry.all
    in
    Fmt.pr "%s" (Report.table ~columns rows)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the Table 1 benchmark suite.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let optimize_arg =
    Arg.(value & flag
         & info [ "O"; "optimize" ]
             ~doc:"Run the frontend simplifier (DCE, constant folding, CSE) first.")
  in
  let json_arg =
    let doc =
      "Write structured metrics for every method run to $(docv) (the \
       schema documented in README.md, section Observability)."
    in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let trace_arg =
    let doc =
      "Record a structured execution trace (flow phases, cascade \
       attempts, per-node B\\&B events, incumbent updates, simplex \
       refactorizations, per-stage covering) and write it to $(docv) as \
       Chrome trace_event JSON — load it in Perfetto or \
       chrome://tracing, or analyze it with `pipesyn trace-report'. \
       Purely observational: results are identical with and without \
       tracing. Buffer capacity via $(b,PIPESYN_TRACE_CAP)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")
  in
  let checkpoint_arg =
    let doc =
      "Snapshot the live MILP solve to $(docv) (atomic rename; the file \
       is always either the previous snapshot or a complete new one). An \
       interrupted run can be continued with `pipesyn resume'. Requires \
       a single MILP method (-m base or -m map)."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~doc ~docv:"FILE")
  in
  let checkpoint_every_arg =
    let doc = "Seconds between checkpoint snapshots (default 5)." in
    Arg.(value
         & opt (some float) None
         & info [ "checkpoint-every" ] ~doc ~docv:"SECS")
  in
  let audit_arg =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:
               "Make MILP solves proof-carrying and re-verify each \
                certificate in exact rational arithmetic after the solve; \
                findings land in the metrics (see `pipesyn audit' for the \
                gating variant).")
  in
  let log_arg =
    let doc =
      "Write the leveled structured event stream (flow phases, cascade \
       retries/degradations, incumbents, cut rounds, checkpoints, \
       recoveries, stalls, resource-probe samples) to $(docv) as NDJSON \
       (schema pipesyn-log-v1). Purely observational: results are \
       identical with and without logging. Also enabled by \
       $(b,PIPESYN_LOG); buffer capacity via $(b,PIPESYN_LOG_CAP)."
    in
    Arg.(value & opt (some string) None & info [ "log" ] ~doc ~docv:"FILE")
  in
  let progress_arg =
    Arg.(value & flag
         & info [ "progress" ]
             ~doc:
               "Render a live single-line status on stderr (phase, \
                nodes/s, gap, heap), driven by the same event stream as \
                --log. Throughput and heap need the resource probe \
                ($(b,PIPESYN_PROBE_MS)).")
  in
  let run name method_ time_limit ii k alpha beta verbose optimize json trace
      faults deadline domains checkpoint checkpoint_every stall_window audit
      cuts presolve log progress =
    setup_logs verbose;
    (match domains with
    | Some d when d < 1 ->
        Fmt.epr "--domains: must be >= 1 (got %d)@." d;
        exit exit_error
    | _ -> ());
    Obs.reset ();
    if trace <> None then Obs.Trace.enable ();
    let log = telemetry_start ~log ~progress in
    arm_faults faults;
    let wall_budget = wall_budget_of deadline in
    let e = entry_of name in
    let g = e.build () in
    let g =
      if optimize then begin
        let g', stats = Opt.simplify g in
        Fmt.pr "simplified: %a@." Opt.pp_stats stats;
        g'
      end
      else g
    in
    let ii =
      if ii > 0 then ii
      else begin
        let device = Fpga.Device.make ~k ~t_clk:e.t_clk () in
        let mii =
          Sched.Heuristic.min_ii ~delays:Fpga.Delays.default ~device
            ~resources:e.resources g
        in
        Fmt.pr "minimum feasible II: %d@." mii;
        mii
      end
    in
    let setup =
      setup_of ~k ~ii ~alpha ~beta ?wall_budget ?domains ~time_limit e
    in
    Fmt.pr "%s: %s@." e.name (Ir.Cdfg.stats g);
    let methods =
      match method_ with
      | Some m -> [ m ]
      | None -> [ Mams.Flow.Hls_tool; Mams.Flow.Milp_base; Mams.Flow.Milp_map ]
    in
    let checkpoint_sink =
      match checkpoint with
      | None ->
          if checkpoint_every <> None then begin
            Fmt.epr "--checkpoint-every requires --checkpoint@.";
            exit exit_error
          end;
          None
      | Some path ->
          let m =
            match methods with
            | [ ((Mams.Flow.Milp_base | Mams.Flow.Milp_map) as m) ] -> m
            | _ ->
                Fmt.epr
                  "--checkpoint requires a single MILP method (-m base or \
                   -m map)@.";
                exit exit_error
          in
          Some
            {
              Lp.Milp.ck_path = path;
              ck_every_s = Option.value ~default:5.0 checkpoint_every;
              ck_every_nodes = None;
              ck_meta =
                checkpoint_meta ~bench:e.name ~method_:m ~time_limit ~ii ~k
                  ~alpha ~beta ~optimize ~audit;
            }
    in
    let setup =
      { setup with
        Mams.Flow.checkpoint = checkpoint_sink;
        stall_window;
        audit;
        cuts;
        presolve;
      }
    in
    let failed = ref false and degraded = ref false in
    let metrics =
      List.map
        (fun m ->
          match Mams.Flow.run setup m g with
          | Ok r ->
              Fmt.pr "%a@." Mams.Flow.pp_result r;
              if r.Mams.Flow.trail <> [] then begin
                degraded := true;
                List.iter
                  (fun a ->
                    Fmt.pr "  degraded: %a@." Resilience.Cascade.pp_attempt a)
                  r.Mams.Flow.trail
              end;
              if verbose then begin
                Fmt.pr "%a@." (Sched.Schedule.pp_detailed g) r.Mams.Flow.schedule;
                Fmt.pr "cover:@.%a@." (Sched.Cover.pp g) r.Mams.Flow.cover
              end;
              Mams.Flow.metrics ~name:e.name r
          | Error err ->
              failed := true;
              Fmt.pr "%-9s error: %s@." (Mams.Flow.method_name m) err;
              Mams.Flow.error_metrics ~name:e.name m)
        methods
    in
    telemetry_finish ~log ~progress;
    (match json with
    | None -> ()
    | Some path ->
        Obs.Metrics.write_file ~path ~results:metrics;
        Fmt.pr "wrote %s@." path);
    (match trace with
    | None -> ()
    | Some path ->
        Obs.Trace.write_chrome ~path;
        Fmt.pr "wrote %s (%d trace events%s)@." path (Obs.Trace.num_events ())
          (let d = Obs.Trace.dropped () in
           if d = 0 then "" else Fmt.str ", %d dropped at cap" d));
    if !failed then exit exit_error
    else if !degraded then exit exit_degraded
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one or all pipeline synthesis flows on a benchmark. Exit \
          codes: 0 clean, 1 a flow failed, 2 every flow produced a \
          (verified) result but at least one degraded, 3 internal error.")
    Term.(
      const run $ bench_arg $ method_arg $ time_limit_arg $ ii_arg $ k_arg
      $ alpha_arg $ beta_arg $ verbose_arg $ optimize_arg $ json_arg
      $ trace_arg $ faults_arg $ deadline_arg $ domains_arg $ checkpoint_arg
      $ checkpoint_every_arg $ stall_window_arg $ audit_arg $ cuts_flag_arg
      $ presolve_flag_arg $ log_arg $ progress_arg)

(* ------------------------------------------------------------------ *)
(* resume                                                              *)
(* ------------------------------------------------------------------ *)

let resume_cmd =
  let file_arg =
    let doc = "Checkpoint file written by `pipesyn run --checkpoint'." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let time_limit_opt_arg =
    let doc =
      "MILP time budget in seconds for the resumed solve itself (default: \
       the original run's budget). Reported solve time is cumulative: the \
       checkpoint's consumed seconds plus this run's."
    in
    Arg.(value & opt (some float) None & info [ "t"; "time-limit" ] ~doc)
  in
  let audit_arg =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:
               "Re-verify the resumed solve's certificate (the \
                checkpoint's closed-node prefix plus this run's nodes) in \
                exact rational arithmetic.")
  in
  let json_arg =
    let doc = "Write structured metrics for the resumed run to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let log_arg =
    let doc =
      "Write the structured NDJSON event stream for the resumed run to \
       $(docv) (as for `pipesyn run --log')."
    in
    Arg.(value & opt (some string) None & info [ "log" ] ~doc ~docv:"FILE")
  in
  let str_of j = match j with Some (Obs.Json.String s) -> Some s | _ -> None in
  let float_of j =
    match j with
    | Some (Obs.Json.Float f) -> Some f
    | Some (Obs.Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let int_of j = match j with Some (Obs.Json.Int i) -> Some i | _ -> None in
  let bool_of j = match j with Some (Obs.Json.Bool b) -> Some b | _ -> None in
  let run file time_limit domains audit json log faults stall_window verbose =
    setup_logs verbose;
    (match domains with
    | Some d when d < 1 ->
        Fmt.epr "--domains: must be >= 1 (got %d)@." d;
        exit exit_error
    | _ -> ());
    Obs.reset ();
    let log = telemetry_start ~log ~progress:false in
    arm_faults faults;
    let ck =
      match Lp.Checkpoint.read ~path:file with
      | Ok ck -> ck
      | Error e ->
          Fmt.epr "%s: %s@." file e;
          exit exit_error
    in
    let meta = ck.Lp.Checkpoint.meta in
    let need what = function
      | Some v -> v
      | None ->
          Fmt.epr
            "%s: checkpoint metadata is missing %s (was it written by \
             `pipesyn run --checkpoint'?)@."
            file what;
          exit exit_error
    in
    let bench = need "benchmark" (str_of (Obs.Json.member "benchmark" meta)) in
    let mkey = need "method" (str_of (Obs.Json.member "method" meta)) in
    let method_ =
      match method_of_key mkey with
      | Some ((Mams.Flow.Milp_base | Mams.Flow.Milp_map) as m) -> m
      | Some _ | None ->
          Fmt.epr "%s: checkpoint method %S is not a MILP flow@." file mkey;
          exit exit_error
    in
    let orig_tl = need "time_limit" (float_of (Obs.Json.member "time_limit" meta)) in
    let ii = need "ii" (int_of (Obs.Json.member "ii" meta)) in
    let k = need "k" (int_of (Obs.Json.member "k" meta)) in
    let alpha = need "alpha" (float_of (Obs.Json.member "alpha" meta)) in
    let beta = need "beta" (float_of (Obs.Json.member "beta" meta)) in
    let optimize =
      Option.value ~default:false (bool_of (Obs.Json.member "optimize" meta))
    in
    let meta_audit =
      Option.value ~default:false (bool_of (Obs.Json.member "audit" meta))
    in
    let e = entry_of bench in
    let g = e.build () in
    let g = if optimize then fst (Opt.simplify g) else g in
    let time_limit = Option.value ~default:orig_tl time_limit in
    (* Default to the original run's domain count; --domains overrides
       (resume is domain-count independent for exhaustive solves). *)
    let domains =
      Some (Option.value ~default:ck.Lp.Checkpoint.domains domains)
    in
    let setup =
      {
        (setup_of ~k ~ii ~alpha ~beta ?domains ~time_limit e) with
        Mams.Flow.audit = audit || meta_audit;
        resume = Some ck;
      }
    in
    Fmt.pr "resuming %s (%s) from %s: %d nodes done, %d open, %.1fs consumed@."
      e.name (Mams.Flow.method_name method_) file ck.Lp.Checkpoint.nodes_done
      (List.length ck.Lp.Checkpoint.frontier)
      ck.Lp.Checkpoint.elapsed_s;
    let setup = { setup with Mams.Flow.stall_window } in
    let failed = ref false and degraded = ref false in
    let metrics =
      match Mams.Flow.run setup method_ g with
      | Ok r ->
          Fmt.pr "%a@." Mams.Flow.pp_result r;
          if r.Mams.Flow.trail <> [] then begin
            degraded := true;
            List.iter
              (fun a ->
                Fmt.pr "  degraded: %a@." Resilience.Cascade.pp_attempt a)
              r.Mams.Flow.trail
          end;
          (match r.Mams.Flow.solve.Mams.Flow.audit_diags with
          | Some diags when Analyze.Diag.has_errors diags ->
              failed := true;
              Fmt.pr "%a@." Analyze.Diag.pp_report diags
          | _ -> ());
          [ Mams.Flow.metrics ~name:e.name r ]
      | Error err ->
          failed := true;
          Fmt.pr "%-9s error: %s@." (Mams.Flow.method_name method_) err;
          [ Mams.Flow.error_metrics ~name:e.name method_ ]
    in
    telemetry_finish ~log ~progress:false;
    (match json with
    | None -> ()
    | Some path ->
        Obs.Metrics.write_file ~path ~results:metrics;
        Fmt.pr "wrote %s@." path);
    if !failed then exit exit_error
    else if !degraded then exit exit_degraded
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue an interrupted MILP solve from a checkpoint written by \
          `pipesyn run --checkpoint'. The setup is rebuilt from the \
          checkpoint's metadata (benchmark, method, formulation \
          parameters) and the model fingerprint is cross-checked before \
          the frontier is rehydrated; an exhaustively solved model \
          returns the identical status, objective and incumbent the \
          uninterrupted run would have. Exit codes as for `pipesyn run'.")
    Term.(
      const run $ file_arg $ time_limit_opt_arg $ domains_arg $ audit_arg
      $ json_arg $ log_arg $ faults_arg $ stall_window_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* cuts                                                                *)
(* ------------------------------------------------------------------ *)

let cuts_cmd =
  let run name k =
    let e = entry_of name in
    let g = e.build () in
    let cuts = Cuts.enumerate ~k g in
    Fmt.pr "%s: %s, %d cuts at K=%d@.@." e.name (Ir.Cdfg.stats g)
      (Cuts.total_cuts cuts) k;
    Array.iteri (fun v cs -> Fmt.pr "%a@." (Cuts.pp_node_cuts g) (v, cs)) cuts
  in
  Cmd.v
    (Cmd.info "cuts" ~doc:"Enumerate the K-feasible cuts of a benchmark CDFG.")
    Term.(const run $ bench_arg $ k_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)
(* ------------------------------------------------------------------ *)

let dot_cmd =
  let out_arg =
    Arg.(value & opt string "cdfg.dot" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let sched_flag =
    Arg.(value & flag
         & info [ "schedule" ] ~doc:"Cluster nodes by HLS-flow schedule cycle.")
  in
  let run name out schedule time_limit =
    let e = entry_of name in
    let g = e.build () in
    if schedule then begin
      let setup = setup_of ~time_limit e in
      match Mams.Flow.run setup Mams.Flow.Hls_tool g with
      | Ok r ->
          let cycle_of v = r.Mams.Flow.schedule.Sched.Schedule.cycle.(v) in
          Ir.Dot.write_file ~cycle_of ~path:out g
      | Error err ->
          Fmt.epr "flow failed: %s@." err;
          exit 1
    end
    else Ir.Dot.write_file ~path:out g;
    Fmt.pr "wrote %s@." out
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a benchmark CDFG as Graphviz.")
    Term.(const run $ bench_arg $ out_arg $ sched_flag $ time_limit_arg)

(* ------------------------------------------------------------------ *)
(* rtl                                                                 *)
(* ------------------------------------------------------------------ *)

let rtl_cmd =
  let out_arg =
    Arg.(value & opt string "pipeline.v" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run name method_ time_limit out =
    let e = entry_of name in
    let g = e.build () in
    let setup = setup_of ~time_limit e in
    let m = Option.value method_ ~default:Mams.Flow.Milp_map in
    match Mams.Flow.run setup m g with
    | Error err ->
        Fmt.epr "flow failed: %s@." err;
        exit 1
    | Ok r ->
        let rtl =
          Rtl.emit
            ~module_name:(String.lowercase_ascii e.name)
            g r.Mams.Flow.cover r.Mams.Flow.schedule
        in
        Rtl.write_file ~path:out rtl;
        Fmt.pr "wrote %s (%d register bits, %d LUT expressions)@." out
          rtl.Rtl.register_bits rtl.Rtl.lut_expressions
  in
  Cmd.v
    (Cmd.info "rtl" ~doc:"Synthesize a benchmark and emit pipelined Verilog.")
    Term.(const run $ bench_arg $ method_arg $ time_limit_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)
(* ------------------------------------------------------------------ *)

(* Run every analyzer pass that applies to a benchmark: CDFG lints and
   the pipelining pre-flight directly on the graph; then — when a
   baseline schedule exists — the MILP model lints (build, don't solve),
   the netlist lints on the HLS-flow netlist, and the schedule
   certificate checker. *)
let lint_entry ~k ~ii (e : Benchmarks.Registry.entry) =
  let g = e.build () in
  let setup = setup_of ~k ~ii ~time_limit:1.0 e in
  let cfg =
    {
      Analyze.Preflight.device = setup.device;
      delays = setup.delays;
      resources = setup.resources;
      ii = setup.ii;
    }
  in
  let static = Analyze.Engine.check_cdfg g @ Analyze.Engine.preflight cfg g in
  let derived =
    if Analyze.Diag.has_errors static then
      (* No point scheduling a graph the gate would reject. *)
      []
    else
      match
        Sched.Heuristic.schedule ~device:setup.device ~delays:setup.delays
          ~resources:setup.resources ~ii:setup.ii g
      with
      | Error _ -> [] (* pre-flight already reported why *)
      | Ok sched ->
          let cuts = Cuts.enumerate ~k:setup.device.Fpga.Device.k g in
          let fcfg =
            Mams.Formulation.
              {
                device = setup.device;
                delays = setup.delays;
                resources = setup.resources;
                ii = setup.ii;
                max_latency = Sched.Schedule.latency sched;
                alpha = setup.alpha;
                beta = setup.beta;
                cut_delay =
                  Mams.Formulation.mapped_delay ~device:setup.device
                    ~delays:setup.delays;
              }
          in
          let f = Mams.Formulation.build fcfg g cuts in
          let model_diags =
            Analyze.Engine.check_model (Mams.Formulation.model f)
          in
          let cover =
            Techmap.map_schedule ~device:setup.device ~delays:setup.delays
              ~cuts g sched
          in
          let sched =
            Sched.Timing.recompute_starts ~device:setup.device
              ~delays:setup.delays g cover sched
          in
          let net_diags =
            Analyze.Engine.check_netlist (Rtl.Netlist.of_design g cover sched)
          in
          let ctx =
            {
              Sched.Verify.device = setup.device;
              delays = setup.delays;
              resources = setup.resources;
            }
          in
          let cert_diags = Analyze.Engine.check_certificate ctx g cover sched in
          model_diags @ net_diags @ cert_diags
  in
  static @ derived

let lint_cmd =
  let bench_opt_arg =
    let doc = "Benchmark to lint (see `pipesyn list')." in
    Arg.(value & opt (some string) None & info [ "b"; "benchmark" ] ~doc)
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every registry benchmark.")
  in
  let json_arg =
    let doc = "Write the JSON lint report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let run name all json ii k verbose =
    setup_logs verbose;
    Obs.reset ();
    let entries =
      if all then Benchmarks.Registry.all
      else
        match name with
        | Some n -> [ entry_of n ]
        | None ->
            Fmt.epr "specify a benchmark with -b NAME or pass --all@.";
            exit exit_error
    in
    let reports =
      List.map
        (fun (e : Benchmarks.Registry.entry) ->
          let diags = lint_entry ~k ~ii e in
          Fmt.pr "== %s: %s ==@." e.name (Analyze.Diag.summary diags);
          if diags <> [] then Fmt.pr "%a@." Analyze.Diag.pp_report diags;
          (e.name, diags))
        entries
    in
    (match json with
    | None -> ()
    | Some path ->
        Analyze.Engine.write_file ~path ~entries:reports;
        Fmt.pr "wrote %s@." path);
    let n_errors =
      List.fold_left
        (fun acc (_, ds) -> acc + List.length (Analyze.Diag.errors ds))
        0 reports
    in
    if n_errors > 0 then begin
      Fmt.epr "lint: %d error diagnostic%s@." n_errors
        (if n_errors = 1 then "" else "s");
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes (CDFG, pre-flight, LP model, \
          netlist, certificate) over benchmarks; exit 1 on any \
          error-severity diagnostic.")
    Term.(
      const run $ bench_opt_arg $ all_arg $ json_arg $ ii_arg $ k_arg
      $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* audit                                                               *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let bench_opt_arg =
    let doc = "Benchmark to audit (see `pipesyn list')." in
    Arg.(value & opt (some string) None & info [ "b"; "benchmark" ] ~doc)
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Audit every registry benchmark.")
  in
  let json_arg =
    let doc = "Write the JSON audit report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"FILE")
  in
  let run name all json time_limit ii k domains cuts presolve verbose =
    setup_logs verbose;
    (match domains with
    | Some d when d < 1 ->
        Fmt.epr "--domains: must be >= 1 (got %d)@." d;
        exit exit_error
    | _ -> ());
    Obs.reset ();
    let entries =
      if all then Benchmarks.Registry.all
      else
        match name with
        | Some n -> [ entry_of n ]
        | None ->
            Fmt.epr "specify a benchmark with -b NAME or pass --all@.";
            exit exit_error
    in
    let failed = ref false in
    let reports =
      List.map
        (fun (e : Benchmarks.Registry.entry) ->
          let g = e.build () in
          let setup =
            { (setup_of ~k ~ii ?domains ~time_limit e) with
              Mams.Flow.audit = true;
              cuts;
              presolve;
            }
          in
          match Mams.Flow.run setup Mams.Flow.Milp_map g with
          | Error err ->
              failed := true;
              Fmt.pr "== %s: flow error: %s ==@." e.name err;
              (e.name, [])
          | Ok r -> (
              match r.Mams.Flow.solve.Mams.Flow.audit_diags with
              | None ->
                  (* the cascade fell back to a solver-free attempt, or
                     cold-start mode suppressed the certificate — either
                     way nothing was proved, which the gate treats as a
                     failure, not a silent pass *)
                  failed := true;
                  Fmt.pr "== %s: no certificate to audit (degraded or \
                          cold-start run) ==@."
                    e.name;
                  (e.name, [])
              | Some diags ->
                  Fmt.pr "== %s: %d certificate nodes, audit %s ==@." e.name
                    r.Mams.Flow.solve.Mams.Flow.cert_nodes
                    (Analyze.Diag.summary diags);
                  if diags <> [] then
                    Fmt.pr "%a@." Analyze.Diag.pp_report diags;
                  if Analyze.Diag.has_errors diags then failed := true;
                  (e.name, diags)))
        entries
    in
    (match json with
    | None -> ()
    | Some path ->
        Analyze.Engine.write_file ~path ~entries:reports;
        Fmt.pr "wrote %s@." path);
    if !failed then exit exit_error
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Run the mapping-aware MILP flow with proof-carrying \
          certificates and re-verify every solver claim (duals, Farkas \
          rays, the pruning log) in exact rational arithmetic. Exit 1 on \
          any CERT1xx error finding, or when no certificate was \
          produced.")
    Term.(
      const run $ bench_opt_arg $ all_arg $ json_arg $ time_limit_arg
      $ ii_arg $ k_arg $ domains_arg $ cuts_flag_arg $ presolve_flag_arg
      $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* diags                                                               *)
(* ------------------------------------------------------------------ *)

let diags_cmd =
  let md_arg =
    Arg.(
      value & flag
      & info [ "markdown" ]
          ~doc:
            "Emit the table as Markdown — the exact content of \
             docs/DIAGNOSTICS.md, which a dune rule keeps in sync with \
             this output.")
  in
  let run markdown =
    if markdown then begin
      Fmt.pr "# Diagnostic codes@.@.";
      Fmt.pr
        "Every static-analysis pass reports findings under a stable, \
         machine-matchable code. This table is generated from the pass \
         registry (`Analyze.Engine.passes`) by `pipesyn diags \
         --markdown`; do not edit it by hand — `dune runtest` diffs this \
         file against the registry.@.@.";
      List.iter
        (fun (p : Analyze.Engine.pass) ->
          Fmt.pr "## %s (%s)@.@." p.Analyze.Engine.name p.Analyze.Engine.artifact;
          Fmt.pr "%s.@.@." p.Analyze.Engine.description;
          Fmt.pr "| Code | Description |@.";
          Fmt.pr "|------|-------------|@.";
          List.iter
            (fun (c, d) -> Fmt.pr "| %s | %s |@." c d)
            p.Analyze.Engine.codes;
          Fmt.pr "@.")
        Analyze.Engine.passes
    end
    else
      List.iter
        (fun (p : Analyze.Engine.pass) ->
          Fmt.pr "%s (%s): %s@." p.Analyze.Engine.name
            p.Analyze.Engine.artifact p.Analyze.Engine.description;
          List.iter
            (fun (c, d) -> Fmt.pr "  %-9s %s@." c d)
            p.Analyze.Engine.codes;
          Fmt.pr "@.")
        Analyze.Engine.passes
  in
  Cmd.v
    (Cmd.info "diags"
       ~doc:
         "Print every diagnostic code the analyzer passes can emit, with \
          one-line descriptions (--markdown emits docs/DIAGNOSTICS.md).")
    Term.(const run $ md_arg)

(* ------------------------------------------------------------------ *)
(* faults                                                              *)
(* ------------------------------------------------------------------ *)

let faults_cmd =
  let run () =
    Fmt.pr "Registered fault points (arm with --faults or PIPESYN_FAULTS):@.@.";
    List.iter
      (fun (name, doc) -> Fmt.pr "  %-16s %s@." name doc)
      Resilience.Fault.points;
    Fmt.pr
      "@.Spec grammar: point (every hit), point@N (N-th hit), \
       point%%P:S (P%%, seed S); comma-separated.@."
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"List the registered fault-injection points and spec grammar.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* trace-report                                                        *)
(* ------------------------------------------------------------------ *)

let trace_report_cmd =
  let file_arg =
    let doc = "Chrome trace_event file written by `pipesyn run --trace'." in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"FILE")
  in
  let top_arg =
    let doc = "How many slowest spans to list." in
    Arg.(value & opt int 10 & info [ "top" ] ~doc ~docv:"N")
  in
  let read_file path =
    match open_in_bin path with
    | exception Sys_error e ->
        Fmt.epr "%s@." e;
        exit exit_error
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
  in
  let fmt_s v = Fmt.str "%.4f" v in
  let fmt_gap g =
    if Float.is_nan g then "-" else Fmt.str "%.2f%%" (100.0 *. g)
  in
  let run file top =
    let contents = read_file file in
    match Obs.Json.of_string contents with
    | Error e ->
        Fmt.epr "%s: JSON parse error: %s@." file e;
        exit exit_error
    | Ok doc -> (
        match Obs.Trace.Analysis.analyze ~top doc with
        | Error e ->
            Fmt.epr "%s: %s@." file e;
            exit exit_error
        | Ok r ->
            let open Obs.Trace.Analysis in
            Fmt.pr "%s: %d events (%d spans, %d instants)@.@." file r.r_events
              r.r_spans r.r_instants;
            if r.r_phases <> [] then begin
              let columns =
                Report.
                  [
                    { title = "Span"; align = Left };
                    { title = "Cat"; align = Left };
                    { title = "Count"; align = Right };
                    { title = "Total s"; align = Right };
                    { title = "Max s"; align = Right };
                  ]
              in
              let rows =
                List.filteri (fun i _ -> i < 20) r.r_phases
                |> List.map (fun s ->
                       [
                         s.sp_name; s.sp_cat; string_of_int s.sp_count;
                         fmt_s s.sp_total; fmt_s s.sp_max;
                       ])
              in
              Fmt.pr "Phase breakdown (by total time):@.%s@."
                (Report.table ~columns rows)
            end;
            (match r.r_tree with
            | None -> ()
            | Some t ->
                Fmt.pr "B&B tree: %d nodes, max depth %d, %d warm / %d cold@."
                  t.tr_nodes t.tr_max_depth t.tr_warm (t.tr_nodes - t.tr_warm);
                (match t.tr_domains with
                | [] -> ()
                | ds ->
                    let total =
                      max 1 (List.fold_left (fun a (_, n) -> a + n) 0 ds)
                    in
                    Fmt.pr "  per-domain utilization: %s@."
                      (String.concat ", "
                         (List.map
                            (fun (d, n) ->
                              Fmt.str "domain %d: %d nodes (%.0f%%)" d n
                                (100.0 *. float_of_int n /. float_of_int total))
                            ds)));
                Fmt.pr "  node LP statuses: %s@.@."
                  (String.concat ", "
                     (List.map
                        (fun (s, n) -> Fmt.str "%s %d" s n)
                        t.tr_statuses)));
            (* Traces written before schema v8 carry no milp.cut_round
               instants; the line is simply omitted. *)
            (match r.r_cuts with
            | None -> ()
            | Some c ->
                let closed =
                  if
                    Float.is_nan c.cu_bound0 || Float.is_nan c.cu_bound
                    || Float.abs c.cu_bound0 < 1e-12
                  then ""
                  else
                    Fmt.str " (root bound %.6g -> %.6g)" c.cu_bound0 c.cu_bound
                in
                Fmt.pr "Root cuts: %d round%s, %d cut%s applied%s@.@."
                  c.cu_rounds
                  (if c.cu_rounds = 1 then "" else "s")
                  c.cu_cuts
                  (if c.cu_cuts = 1 then "" else "s")
                  closed);
            if r.r_timeline <> [] then begin
              let columns =
                Report.
                  [
                    { title = "t (s)"; align = Right };
                    { title = "Objective"; align = Right };
                    { title = "Gap"; align = Right };
                  ]
              in
              let rows =
                List.map
                  (fun p ->
                    [ fmt_s p.gp_ts; Fmt.str "%.6g" p.gp_obj; fmt_gap p.gp_gap ])
                  r.r_timeline
              in
              Fmt.pr "Incumbent/gap timeline:@.%s@."
                (Report.table ~columns rows)
            end;
            if r.r_slowest <> [] then begin
              let columns =
                Report.
                  [
                    { title = "Span"; align = Left };
                    { title = "Cat"; align = Left };
                    { title = "Start s"; align = Right };
                    { title = "Dur s"; align = Right };
                  ]
              in
              let rows =
                List.map
                  (fun s ->
                    [ s.sl_name; s.sl_cat; fmt_s s.sl_start; fmt_s s.sl_dur ])
                  r.r_slowest
              in
              Fmt.pr "Top %d slowest spans:@.%s@."
                (List.length r.r_slowest)
                (Report.table ~columns rows)
            end;
            (* Resource-probe samples (PIPESYN_PROBE_MS) ride in the
               trace as "probe.sample" instants; summarize when present. *)
            (let samples =
               match Obs.Json.member "traceEvents" doc with
               | Some (Obs.Json.List evs) ->
                   List.filter_map
                     (fun ev ->
                       match
                         (Obs.Json.member "name" ev, Obs.Json.member "args" ev)
                       with
                       | Some (Obs.Json.String "probe.sample"), Some args ->
                           Some args
                       | _ -> None)
                     evs
               | _ -> []
             in
             match samples with
             | [] -> ()
             | _ ->
                 let num k args =
                   match Obs.Json.member k args with
                   | Some (Obs.Json.Float f) -> f
                   | Some (Obs.Json.Int i) -> float_of_int i
                   | _ -> Float.nan
                 in
                 let peak k =
                   List.fold_left
                     (fun acc a ->
                       let v = num k a in
                       if Float.is_nan v then acc else Float.max acc v)
                     Float.neg_infinity samples
                 in
                 let heap_w = peak "heap_words" and rss_kb = peak "rss_kb" in
                 Fmt.pr "Resources: %d probe sample%s%s%s@.@."
                   (List.length samples)
                   (if List.length samples = 1 then "" else "s")
                   (if Float.is_finite heap_w && heap_w > 0.0 then
                      Fmt.str ", peak heap %.1f MiB"
                        (heap_w *. 8.0 /. 1048576.0)
                    else "")
                   (if Float.is_finite rss_kb && rss_kb > 0.0 then
                      Fmt.str ", peak RSS %.1f MiB" (rss_kb /. 1024.0)
                    else ""));
            List.iter (fun e -> Fmt.pr "well-formedness: %s@." e) r.r_errors;
            Fmt.pr "spans: %d, well-formedness errors: %d@." r.r_spans
              (List.length r.r_errors);
            (* A trace with no spans (or a malformed one) fails the
               report — CI leans on this as its validity gate. *)
            if r.r_errors <> [] || r.r_spans = 0 then exit exit_error)
  in
  Cmd.v
    (Cmd.info "trace-report"
       ~doc:
         "Analyze a trace written by `pipesyn run --trace': phase \
          breakdown, branch-and-bound tree shape, incumbent/gap \
          timeline, slowest spans, and well-formedness checks (exit 1 \
          on any violation or an empty trace).")
    Term.(const run $ file_arg $ top_arg)

(* ------------------------------------------------------------------ *)
(* bench-diff                                                          *)
(* ------------------------------------------------------------------ *)

let bench_diff_cmd =
  let old_arg =
    let doc =
      "Baseline metrics file (written by `pipesyn run --json' or the \
       bench harness; bench/baseline.json in CI)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~doc ~docv:"OLD")
  in
  let new_arg =
    let doc = "Candidate metrics file to compare against $(i,OLD)." in
    Arg.(required & pos 1 (some string) None & info [] ~doc ~docv:"NEW")
  in
  let d = Benchdiff.default_thresholds in
  let time_rel_arg =
    let doc =
      "Relative solve-time increase that flags a regression (fraction)."
    in
    Arg.(value & opt float d.Benchdiff.time_rel
         & info [ "time-rel" ] ~doc ~docv:"FRAC")
  in
  let time_floor_arg =
    let doc =
      "Absolute seconds below which solve-time deltas are ignored (both \
       sides sub-floor = machine noise)."
    in
    Arg.(value & opt float d.Benchdiff.time_floor_s
         & info [ "time-floor" ] ~doc ~docv:"SECS")
  in
  let count_rel_arg =
    let doc =
      "Relative node/pivot-count increase that flags a regression \
       (fraction; only compared between two optimal solves)."
    in
    Arg.(value & opt float d.Benchdiff.count_rel
         & info [ "count-rel" ] ~doc ~docv:"FRAC")
  in
  let gap_abs_arg =
    let doc =
      "Absolute decrease of root-gap closure that flags a regression."
    in
    Arg.(value & opt float d.Benchdiff.gap_abs
         & info [ "gap-abs" ] ~doc ~docv:"FRAC")
  in
  let report_arg =
    let doc = "Write the machine-readable diff report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~doc ~docv:"REPORT")
  in
  let load path =
    let contents =
      match open_in_bin path with
      | exception Sys_error e ->
          Fmt.epr "%s@." e;
          exit 3
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Obs.Json.of_string contents with
    | Ok j -> j
    | Error e ->
        Fmt.epr "%s: JSON parse error: %s@." path e;
        exit 3
  in
  let run old_p new_p time_rel time_floor_s count_rel gap_abs report =
    let thresholds =
      { Benchdiff.time_rel; time_floor_s; count_rel; gap_abs }
    in
    let old_j = load old_p and new_j = load new_p in
    match Benchdiff.diff ~thresholds old_j new_j with
    | Error e ->
        Fmt.epr "bench-diff: %s@." e;
        exit 3
    | Ok r ->
        (match report with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () ->
                output_string oc (Obs.Json.to_string (Benchdiff.report_to_json r));
                output_char oc '\n');
            Fmt.pr "wrote %s@." path);
        Fmt.pr "%a" Benchdiff.pp_report r;
        if Benchdiff.regressed r then exit exit_error
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:
         "Compare two metrics files for performance regressions, \
          noise-aware: wall time has a relative threshold plus an \
          absolute floor, node/pivot counts are compared only between \
          two optimal solves, a worsened status or a vanished row always \
          flags. Exit codes: 0 no regression, 1 regression found, 3 \
          unreadable file or schema mismatch.")
    Term.(
      const run $ old_arg $ new_arg $ time_rel_arg $ time_floor_arg
      $ count_rel_arg $ gap_abs_arg $ report_arg)

(* ------------------------------------------------------------------ *)
(* table1 / table2 pointers                                            *)
(* ------------------------------------------------------------------ *)

let tables_cmd =
  let run () =
    Fmt.pr
      "Tables 1-2, the figures and the ablations are regenerated by the@.";
    Fmt.pr "benchmark harness:@.@.";
    Fmt.pr "  dune exec bench/main.exe@.@.";
    Fmt.pr "Use PIPESYN_TIME_LIMIT / PIPESYN_ONLY to control the run.@."
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"How to regenerate the paper's tables/figures.")
    Term.(const run $ const ())

let () =
  let doc =
    "Area-efficient pipelining for FPGA-targeted HLS (DAC 2015 reproduction)"
  in
  let info = Cmd.info "pipesyn" ~version:"1.0.0" ~doc in
  (* Exceptions that escape the cascade's containment are internal errors:
     report one line (no raw backtrace) and exit 3, distinguishable from
     error findings (1) and degraded-but-verified results (2). *)
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [
             list_cmd; run_cmd; resume_cmd; cuts_cmd; dot_cmd; rtl_cmd;
             lint_cmd; audit_cmd; diags_cmd; faults_cmd; trace_report_cmd;
             bench_diff_cmd; tables_cmd;
           ])
    with e ->
      Fmt.epr "pipesyn: internal error: %s@." (Printexc.to_string e);
      3
  in
  exit code
